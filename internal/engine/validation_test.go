package engine

import (
	"math"
	"testing"

	"repro/internal/queueing"
	"repro/internal/simclock"
)

// These tests validate the flow-level engine against closed-form queueing
// theory in the regimes where exact results exist. The reproduction's
// conclusions rest on this simulator standing in for real hardware, so
// its macroscopic behaviour must match the operational laws and the
// asymptotic/MVA predictions for closed systems — not merely look
// plausible.

// closedLoop drives n zero-think-time clients, each submitting a fixed
// demand repeatedly, and returns steady-state throughput and mean
// response time measured over [warmup, horizon].
func closedLoop(t *testing.T, cfg Config, n int, d Demand, warmup, horizon float64) (x, rt float64) {
	t.Helper()
	clock := simclock.New()
	e := New(cfg, clock)
	var completed int
	var rtSum float64
	measuring := false
	submit := func(c ClientID) {
		e.Submit(&Query{Client: c, Demand: d})
	}
	e.OnDone(func(q *Query) {
		if measuring {
			completed++
			rtSum += q.ResponseTime()
		}
		submit(q.Client)
	})
	for c := 0; c < n; c++ {
		submit(ClientID(c))
	}
	clock.RunUntil(warmup)
	measuring = true
	clock.RunUntil(horizon)
	elapsed := horizon - warmup
	if completed == 0 {
		t.Fatal("no completions in measurement window")
	}
	return float64(completed) / elapsed, rtSum / float64(completed)
}

func TestEngineMatchesBottleneckThroughputBound(t *testing.T) {
	// 8 CPU-bound clients, 2 CPUs, demand 0.1s: saturated closed system.
	// Theory: X = c/D = 20/s, R = N·D/c = 0.4s.
	cfg := Config{CPUCapacity: 2, IOCapacity: 10}
	x, rt := closedLoop(t, cfg, 8, Demand{Work: 0.1, CPURate: 1}, 50, 150)
	if math.Abs(x-20) > 0.2 {
		t.Fatalf("X = %v, theory says 20/s", x)
	}
	if math.Abs(rt-0.4) > 0.01 {
		t.Fatalf("R = %v, theory says 0.4s", rt)
	}
}

func TestEngineObeysLittlesLaw(t *testing.T) {
	cfg := Config{CPUCapacity: 3, IOCapacity: 10}
	n := 11
	x, rt := closedLoop(t, cfg, n, Demand{Work: 0.05, CPURate: 1}, 20, 120)
	// In a closed zero-think system the population equals X·R exactly.
	if got := queueing.LittlesLaw(x, rt); math.Abs(got-float64(n)) > 0.2 {
		t.Fatalf("X·R = %v, want N = %d", got, n)
	}
}

func TestEngineUndersaturatedRunsAtFullSpeed(t *testing.T) {
	// 2 clients on 4 CPUs: no contention, R = D, X = N/D.
	cfg := Config{CPUCapacity: 4, IOCapacity: 10}
	x, rt := closedLoop(t, cfg, 2, Demand{Work: 0.2, CPURate: 1}, 10, 60)
	if math.Abs(rt-0.2) > 1e-6 {
		t.Fatalf("R = %v, want the bare demand 0.2", rt)
	}
	if math.Abs(x-10) > 0.2 {
		t.Fatalf("X = %v, want N/D = 10", x)
	}
}

func TestEngineThroughputRespectsAsymptoticBounds(t *testing.T) {
	cfg := Config{CPUCapacity: 2, IOCapacity: 10}
	d := Demand{Work: 0.1, CPURate: 1}
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		x, _ := closedLoop(t, cfg, n, d, 50, 150)
		b := queueing.AsymptoticBounds(float64(n), 0.1, 0.1, 2, 0)
		if x > b.MaxThroughput*1.02 {
			t.Fatalf("N=%d: X = %v exceeds bound %v", n, x, b.MaxThroughput)
		}
		// Processor sharing with deterministic demands achieves the
		// bound (no stochastic slack): check tightness too.
		if x < b.MaxThroughput*0.95 {
			t.Fatalf("N=%d: X = %v far below achievable bound %v", n, x, b.MaxThroughput)
		}
	}
}

func TestEngineMatchesMVAWithTwoStations(t *testing.T) {
	// A two-station closed network is only product-form when each
	// query uses one station; build half CPU-bound, half I/O-bound
	// clients and compare against per-chain bottleneck analysis.
	cfg := Config{CPUCapacity: 1, IOCapacity: 1}
	clock := simclock.New()
	e := New(cfg, clock)
	const nPerClass = 4
	var cpuDone, ioDone int
	measuring := false
	submit := func(c ClientID, d Demand) {
		e.Submit(&Query{Client: c, Demand: d})
	}
	cpuD := Demand{Work: 0.1, CPURate: 1}
	ioD := Demand{Work: 0.2, IORate: 1}
	e.OnDone(func(q *Query) {
		if measuring {
			if q.Demand.CPURate > 0 {
				cpuDone++
			} else {
				ioDone++
			}
		}
		submit(q.Client, q.Demand)
	})
	for c := 0; c < nPerClass; c++ {
		submit(ClientID(c), cpuD)
		submit(ClientID(100+c), ioD)
	}
	clock.RunUntil(100)
	measuring = true
	clock.RunUntil(300)
	// Disjoint stations: each class saturates its own station.
	xCPU := float64(cpuDone) / 200
	xIO := float64(ioDone) / 200
	if math.Abs(xCPU-10) > 0.2 {
		t.Fatalf("CPU-chain X = %v, want 1/0.1 = 10", xCPU)
	}
	if math.Abs(xIO-5) > 0.2 {
		t.Fatalf("IO-chain X = %v, want 1/0.2 = 5", xIO)
	}
}

func TestEngineContentionOverheadMatchesModel(t *testing.T) {
	// With alpha > 0 and the station unsaturated, R = D·(1+alpha·(N-1)).
	alpha := 0.05
	cfg := Config{CPUCapacity: 16, IOCapacity: 16, ContentionAlpha: alpha}
	n := 8
	_, rt := closedLoop(t, cfg, n, Demand{Work: 0.1, CPURate: 1}, 20, 120)
	want := 0.1 * (1 + alpha*float64(n-1))
	if math.Abs(rt-want) > 1e-3 {
		t.Fatalf("R = %v, overhead model says %v", rt, want)
	}
}

func TestEngineWeightedSharesMatchTheory(t *testing.T) {
	// Two classes, weights 3:1, one CPU, both saturating: class rates
	// must be 0.75 and 0.25 of capacity, so throughputs 7.5/s and 2.5/s
	// with demand 0.1.
	clock := simclock.New()
	e := New(Config{CPUCapacity: 1, IOCapacity: 10}, clock)
	e.SetClassWeights(map[ClassID]float64{1: 3, 2: 1})
	counts := map[ClassID]int{}
	measuring := false
	submit := func(c ClientID, class ClassID) {
		e.Submit(&Query{Client: c, Class: class, Demand: Demand{Work: 0.1, CPURate: 1}})
	}
	e.OnDone(func(q *Query) {
		if measuring {
			counts[q.Class]++
		}
		submit(q.Client, q.Class)
	})
	for c := 0; c < 4; c++ {
		submit(ClientID(c), 1)
		submit(ClientID(100+c), 2)
	}
	clock.RunUntil(50)
	measuring = true
	clock.RunUntil(250)
	x1 := float64(counts[1]) / 200
	x2 := float64(counts[2]) / 200
	if math.Abs(x1-7.5) > 0.2 || math.Abs(x2-2.5) > 0.2 {
		t.Fatalf("weighted throughputs %v/%v, theory says 7.5/2.5", x1, x2)
	}
}
