//go:build !race

package engine

import "testing"

// TestStationScalesAllocFree pins the hotalloc fix that replaced the
// per-reschedule sort.Slice closure with an insertion sort: the weighted
// water-filling path must not allocate once the scratch buffers are
// warm. (Skipped under -race: instrumentation adds its own allocations.)
func TestStationScalesAllocFree(t *testing.T) {
	e, _ := newTestEngine(1, 1)
	e.SetClassWeights(map[ClassID]float64{1: 3, 2: 1, 3: 2})
	for i := 0; i < 6; i++ {
		e.Submit(classQuery(ClassID(i%3+1), 1000))
	}
	// One warm-up call grows the scratch buffers to capacity.
	e.cpuScratch = e.stationScales(e.cpuScratch[:0], demandCPURate, e.cfg.CPUCapacity)
	e.ioScratch = e.stationScales(e.ioScratch[:0], demandIORate, e.cfg.IOCapacity)
	allocs := testing.AllocsPerRun(100, func() {
		e.cpuScratch = e.stationScales(e.cpuScratch[:0], demandCPURate, e.cfg.CPUCapacity)
		e.ioScratch = e.stationScales(e.ioScratch[:0], demandIORate, e.cfg.IOCapacity)
	})
	if allocs != 0 {
		t.Fatalf("stationScales allocates %v per reschedule; the weighted water-filling path must be allocation-free", allocs)
	}
}
