package engine

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simclock"
)

// newTestEngine returns an engine with exact processor sharing (no MPL
// overhead) so timing assertions are closed-form.
func newTestEngine(cpu, io float64) (*Engine, *simclock.Clock) {
	clock := simclock.New()
	e := New(Config{CPUCapacity: cpu, IOCapacity: io}, clock)
	return e, clock
}

func cpuQuery(work float64) *Query {
	return &Query{Demand: Demand{Work: work, CPURate: 1}}
}

func ioQuery(work float64) *Query {
	return &Query{Demand: Demand{Work: work, IORate: 1}}
}

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b)) }

func TestSingleQueryRunsAtFullSpeed(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	q := cpuQuery(10)
	e.Submit(q)
	clock.Run()
	if q.State != StateDone {
		t.Fatalf("state = %v", q.State)
	}
	if !almost(q.ExecutionTime(), 10) {
		t.Fatalf("exec = %v, want 10", q.ExecutionTime())
	}
	if !almost(q.Velocity(), 1) {
		t.Fatalf("velocity = %v, want 1 with no queueing", q.Velocity())
	}
}

func TestTwoCPUQueriesShareOneCPU(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	a, b := cpuQuery(10), cpuQuery(10)
	e.Submit(a)
	e.Submit(b)
	clock.Run()
	if !almost(a.ExecutionTime(), 20) || !almost(b.ExecutionTime(), 20) {
		t.Fatalf("exec = %v/%v, want 20 each under 2x sharing", a.ExecutionTime(), b.ExecutionTime())
	}
}

func TestTwoCPUQueriesOnTwoCPUsDoNotInterfere(t *testing.T) {
	e, clock := newTestEngine(2, 1)
	a, b := cpuQuery(10), cpuQuery(10)
	e.Submit(a)
	e.Submit(b)
	clock.Run()
	if !almost(a.ExecutionTime(), 10) || !almost(b.ExecutionTime(), 10) {
		t.Fatalf("exec = %v/%v, want 10 each", a.ExecutionTime(), b.ExecutionTime())
	}
}

func TestCPUAndIOQueriesDoNotInterfere(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	c, i := cpuQuery(10), ioQuery(10)
	e.Submit(c)
	e.Submit(i)
	clock.Run()
	if !almost(c.ExecutionTime(), 10) || !almost(i.ExecutionTime(), 10) {
		t.Fatalf("exec = %v/%v, want 10 each on disjoint stations", c.ExecutionTime(), i.ExecutionTime())
	}
}

func TestMixedDemandLimitedByWorstStation(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	// Query using both stations, plus two pure-I/O competitors: the I/O
	// station runs at 1/3 speed, which throttles the mixed query.
	mixed := &Query{Demand: Demand{Work: 9, CPURate: 0.1, IORate: 1}}
	e.Submit(mixed)
	e.Submit(ioQuery(9))
	e.Submit(ioQuery(9))
	clock.Run()
	if !almost(mixed.ExecutionTime(), 27) {
		t.Fatalf("exec = %v, want 27 (I/O bound at 1/3 speed)", mixed.ExecutionTime())
	}
}

func TestLateArrivalSlowsExistingQuery(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	a := cpuQuery(10)
	e.Submit(a)
	var b *Query
	clock.At(5, func() {
		b = cpuQuery(10)
		e.Submit(b)
	})
	clock.Run()
	// a runs alone for 5s (5 work done), then shares: remaining 5 at
	// rate 1/2 -> finishes at t=15.
	if !almost(a.DoneTime, 15) {
		t.Fatalf("a done at %v, want 15", a.DoneTime)
	}
	// b: shares until 15 (5 work done), then alone: finishes at 20.
	if !almost(b.DoneTime, 20) {
		t.Fatalf("b done at %v, want 20", b.DoneTime)
	}
}

func TestParallelQueryUsesMultipleCPUs(t *testing.T) {
	e, clock := newTestEngine(2, 1)
	q := &Query{Demand: Demand{Work: 5, CPURate: 2}} // 10 CPU-seconds at degree 2
	e.Submit(q)
	clock.Run()
	if !almost(q.ExecutionTime(), 5) {
		t.Fatalf("exec = %v, want 5 with both CPUs", q.ExecutionTime())
	}
	st := e.Stats()
	if !almost(st.CPUSecondsUsed, 10) {
		t.Fatalf("CPU used = %v, want 10", st.CPUSecondsUsed)
	}
}

func TestContentionOverheadSlowsEveryone(t *testing.T) {
	clock := simclock.New()
	e := New(Config{CPUCapacity: 4, IOCapacity: 4, ContentionAlpha: 0.5}, clock)
	a, b := cpuQuery(10), cpuQuery(10)
	e.Submit(a)
	e.Submit(b)
	clock.Run()
	// Two queries, plenty of CPU, but overhead 1+0.5*(2-1) = 1.5.
	if !almost(a.ExecutionTime(), 15) {
		t.Fatalf("exec = %v, want 15 with 1.5x overhead", a.ExecutionTime())
	}
}

func TestInterceptorHoldAndStart(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	var held *Query
	e.SetInterceptor(interceptorFunc(func(q *Query) bool {
		held = q
		return true
	}))
	q := cpuQuery(10)
	e.Submit(q)
	if q.State != StateQueued {
		t.Fatalf("state = %v, want queued", q.State)
	}
	clock.At(7, func() { e.Start(held) })
	clock.Run()
	if !almost(q.DoneTime, 17) {
		t.Fatalf("done at %v, want 17", q.DoneTime)
	}
	if !almost(q.ResponseTime(), 17) || !almost(q.ExecutionTime(), 10) {
		t.Fatalf("resp/exec = %v/%v", q.ResponseTime(), q.ExecutionTime())
	}
	if !almost(q.Velocity(), 10.0/17) {
		t.Fatalf("velocity = %v, want 10/17", q.Velocity())
	}
}

type interceptorFunc func(*Query) bool

func (f interceptorFunc) Intercept(q *Query) bool { return f(q) }

func TestInterceptorPassThrough(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	e.SetInterceptor(interceptorFunc(func(q *Query) bool { return false }))
	q := cpuQuery(1)
	e.Submit(q)
	if q.State != StateExecuting {
		t.Fatalf("state = %v, want executing", q.State)
	}
	clock.Run()
}

func TestInterceptorMayInflateDemand(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	e.SetInterceptor(interceptorFunc(func(q *Query) bool {
		q.Demand.Work += 5
		return false
	}))
	q := cpuQuery(10)
	e.Submit(q)
	clock.Run()
	if !almost(q.ExecutionTime(), 15) {
		t.Fatalf("exec = %v, want inflated 15", q.ExecutionTime())
	}
}

func TestOnDoneListenersFireInOrder(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	var order []int
	e.OnDone(func(*Query) { order = append(order, 1) })
	e.OnDone(func(*Query) { order = append(order, 2) })
	e.Submit(cpuQuery(1))
	clock.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("listener order %v", order)
	}
}

func TestSubmitFromListener(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	count := 0
	e.OnDone(func(q *Query) {
		count++
		if count < 5 {
			e.Submit(cpuQuery(2))
		}
	})
	e.Submit(cpuQuery(2))
	clock.Run()
	if count != 5 {
		t.Fatalf("chained %d completions, want 5", count)
	}
	if !almost(clock.Now(), 10) {
		t.Fatalf("finished at %v, want 10", clock.Now())
	}
}

func TestSnapshotMonitorRecordsLastFinished(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	if _, ok := e.LastFinished(3); ok {
		t.Fatal("snapshot exists before any completion")
	}
	q1 := cpuQuery(4)
	q1.Client = 3
	q1.Class = 9
	q1.Cost = 42
	e.Submit(q1)
	clock.Run()
	s, ok := e.LastFinished(3)
	if !ok || !almost(s.ExecTime, 4) || s.Class != 9 || s.QueryCost != 42 {
		t.Fatalf("snapshot = %+v, ok=%v", s, ok)
	}
	// A second statement overwrites the record.
	q2 := cpuQuery(2)
	q2.Client = 3
	e.Submit(q2)
	clock.Run()
	s, _ = e.LastFinished(3)
	if !almost(s.ExecTime, 2) {
		t.Fatalf("snapshot not overwritten: %+v", s)
	}
}

func TestActiveCostByClass(t *testing.T) {
	e, _ := newTestEngine(10, 10)
	for _, spec := range []struct {
		class ClassID
		cost  float64
	}{{1, 100}, {1, 50}, {2, 70}} {
		q := cpuQuery(100)
		q.Class = spec.class
		q.Cost = spec.cost
		e.Submit(q)
	}
	m := e.ActiveCostByClass()
	if m[1] != 150 || m[2] != 70 {
		t.Fatalf("ActiveCostByClass = %v", m)
	}
	if e.Active() != 3 {
		t.Fatalf("Active = %d", e.Active())
	}
}

func TestUtilization(t *testing.T) {
	e, _ := newTestEngine(2, 4)
	e.Submit(&Query{Demand: Demand{Work: 10, CPURate: 1, IORate: 2}})
	cpu, io := e.Utilization()
	if !almost(cpu, 0.5) || !almost(io, 0.5) {
		t.Fatalf("utilization = %v/%v, want 0.5/0.5", cpu, io)
	}
}

func TestStatsCounters(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	e.Submit(cpuQuery(3))
	e.Submit(ioQuery(2))
	clock.Run()
	st := e.Stats()
	if st.Submitted != 2 || st.Started != 2 || st.Completed != 2 {
		t.Fatalf("counters = %+v", st)
	}
	if !almost(st.CPUSecondsUsed, 3) || !almost(st.IOSecondsUsed, 2) {
		t.Fatalf("resource use = %v cpu / %v io", st.CPUSecondsUsed, st.IOSecondsUsed)
	}
}

func TestInvalidDemandPanics(t *testing.T) {
	cases := []Demand{
		{Work: 0, CPURate: 1},
		{Work: -1, CPURate: 1},
		{Work: 1, CPURate: -1},
		{Work: 1},
		{Work: math.NaN(), CPURate: 1},
	}
	for _, d := range cases {
		d := d
		func() {
			e, _ := newTestEngine(1, 1)
			defer func() {
				if recover() == nil {
					t.Fatalf("demand %+v did not panic", d)
				}
			}()
			e.Submit(&Query{Demand: d})
		}()
	}
}

func TestDoubleSubmitPanics(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	q := cpuQuery(1)
	e.Submit(q)
	clock.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("re-submit of done query did not panic")
		}
	}()
	e.Submit(q)
}

func TestStartExecutingQueryPanics(t *testing.T) {
	e, _ := newTestEngine(1, 1)
	q := cpuQuery(1)
	e.Submit(q)
	defer func() {
		if recover() == nil {
			t.Fatal("Start on executing query did not panic")
		}
	}()
	e.Start(q)
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{CPUCapacity: 0, IOCapacity: 1},
		{CPUCapacity: 1, IOCapacity: 0},
		{CPUCapacity: 1, IOCapacity: 1, ContentionAlpha: -1},
	} {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v did not panic", cfg)
				}
			}()
			New(cfg, simclock.New())
		}()
	}
}

func TestDemandAccessors(t *testing.T) {
	d := Demand{Work: 10, CPURate: 0.5, IORate: 2}
	if !almost(d.CPUSeconds(), 5) || !almost(d.IOSeconds(), 20) {
		t.Fatalf("demand seconds = %v/%v", d.CPUSeconds(), d.IOSeconds())
	}
}

// TestWorkConservationProperty submits random query mixes and checks the
// engine never delivers more station-seconds than capacity allows, and
// that every query eventually completes having consumed exactly its
// demand.
func TestWorkConservationProperty(t *testing.T) {
	f := func(seed uint32) bool {
		r := seed
		next := func() float64 {
			r = r*1664525 + 1013904223
			return float64(r%1000)/1000.0 + 0.001
		}
		clock := simclock.New()
		cpuCap := 1 + 3*next()
		ioCap := 1 + 3*next()
		e := New(Config{CPUCapacity: cpuCap, IOCapacity: ioCap, ContentionAlpha: next() * 0.05}, clock)
		n := int(next()*20) + 2
		var wantCPU, wantIO float64
		for i := 0; i < n; i++ {
			d := Demand{Work: next() * 20, CPURate: next() * 2, IORate: next() * 2}
			if d.CPURate == 0 && d.IORate == 0 {
				d.CPURate = 0.5
			}
			wantCPU += d.CPUSeconds()
			wantIO += d.IOSeconds()
			at := next() * 30
			clock.At(at, func() { e.Submit(&Query{Demand: d}) })
		}
		clock.Run()
		st := e.Stats()
		if st.Completed != uint64(n) {
			return false
		}
		if !almost(st.CPUSecondsUsed, wantCPU) || !almost(st.IOSecondsUsed, wantIO) {
			return false
		}
		// Station capacity bound: used <= capacity x busy time (+ eps).
		if st.CPUSecondsUsed > cpuCap*st.BusyTime*(1+1e-9)+1e-6 {
			return false
		}
		if st.IOSecondsUsed > ioCap*st.BusyTime*(1+1e-9)+1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuiesceIsSafeAnytime(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	e.Submit(cpuQuery(10))
	clock.At(3, func() { e.Quiesce() })
	clock.Run()
	if e.Stats().Completed != 1 {
		t.Fatal("query lost after Quiesce")
	}
}
