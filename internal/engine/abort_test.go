package engine

import "testing"

func TestAbortMidExecutionIsTerminal(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	q := cpuQuery(10)
	var aborted, done []*Query
	e.OnAbort(func(q *Query) { aborted = append(aborted, q) })
	e.OnDone(func(q *Query) { done = append(done, q) })
	e.Submit(q)
	clock.After(4, func() {
		if !e.Abort(q) {
			t.Fatal("abort of executing query refused")
		}
	})
	clock.Run()
	if q.State != StateFailed {
		t.Fatalf("state = %v, want StateFailed", q.State)
	}
	if !almost(q.DoneTime, 4) {
		t.Fatalf("done time = %v, want 4", q.DoneTime)
	}
	if len(aborted) != 1 || aborted[0] != q {
		t.Fatalf("abort listeners saw %v", aborted)
	}
	if len(done) != 1 || done[0] != q {
		t.Fatalf("unclaimed abort must reach done listeners, saw %v", done)
	}
	if st := e.Stats(); st.Aborted != 1 || st.Completed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAbortClaimedByHandlerSuppressesDone(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	q := cpuQuery(10)
	var doneCalls, claims int
	e.OnDone(func(*Query) { doneCalls++ })
	e.SetAbortHandler(func(*Query) bool { claims++; return true })
	e.Submit(q)
	clock.After(4, func() { e.Abort(q) })
	clock.Run()
	if claims != 1 {
		t.Fatalf("handler claims = %d", claims)
	}
	if doneCalls != 0 {
		t.Fatalf("claimed abort reached done listeners %d times", doneCalls)
	}
}

func TestAbortNonExecutingQueryRefused(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	q := cpuQuery(1)
	e.Submit(q)
	clock.Run()
	if q.State != StateDone {
		t.Fatalf("state = %v", q.State)
	}
	if e.Abort(q) {
		t.Fatal("abort of completed query accepted")
	}
	if e.Abort(nil) {
		t.Fatal("abort of nil query accepted")
	}
	if st := e.Stats(); st.Aborted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSetSpeedScalesProgress(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	q := cpuQuery(10)
	e.Submit(q)
	e.SetSpeed(0.5)
	clock.Run()
	if !almost(q.DoneTime, 20) {
		t.Fatalf("done = %v, want 20 at half speed", q.DoneTime)
	}
}

func TestStallWindowFreezesProgress(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	q := cpuQuery(10)
	e.Submit(q)
	// Stall [4, 7): three frozen seconds push completion from 10 to 13.
	clock.At(4, func() { e.SetSpeed(0) })
	clock.At(7, func() { e.SetSpeed(1) })
	clock.Run()
	if q.State != StateDone {
		t.Fatalf("state = %v after stall window ended", q.State)
	}
	if !almost(q.DoneTime, 13) {
		t.Fatalf("done = %v, want 13 after a 3s stall", q.DoneTime)
	}
	if e.Speed() != 1 {
		t.Fatalf("speed = %v", e.Speed())
	}
}

func TestRetryAttemptCarriesThrough(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	first := cpuQuery(10)
	var retried *Query
	e.SetAbortHandler(func(failed *Query) bool {
		retried = &Query{Demand: failed.Demand, Attempt: failed.Attempt + 1}
		e.Submit(retried)
		return true
	})
	e.Submit(first)
	clock.After(4, func() { e.Abort(first) })
	clock.Run()
	if retried == nil || retried.State != StateDone {
		t.Fatalf("retry did not complete: %+v", retried)
	}
	if retried.Attempt != 1 {
		t.Fatalf("attempt = %d", retried.Attempt)
	}
	// The retry restarts from scratch at the abort instant.
	if !almost(retried.DoneTime, 14) {
		t.Fatalf("retry done = %v, want 14", retried.DoneTime)
	}
}
