// Package engine is a flow-level discrete-event simulation of a database
// server — the stand-in for the paper's IBM DB2 UDB 8.2 instance on an
// xSeries 240 (dual 1 GHz CPUs, 17-disk SCSI array).
//
// The model is deliberately minimal but preserves the three properties the
// paper's experiments depend on:
//
//  1. Queries have widely varying resource demands (set by the optimizer's
//     per-plan CPU/I/O service demands).
//  2. OLAP queries are I/O-intensive while OLTP queries are CPU-intensive,
//     so the two workload types contend differently.
//  3. Throughput saturates as concurrent load grows past a knee — which is
//     what makes a "system cost limit" meaningful.
//
// Each executing query progresses at a rate set by processor sharing over
// two stations (CPU and I/O) plus a multiprogramming-level contention
// overhead. Time is virtual (see simclock), so the paper's 24-hour runs
// complete in well under a second.
package engine

import (
	"fmt"
	"math"

	"repro/internal/simclock"
)

// QueryID uniquely identifies a query within one engine.
type QueryID uint64

// ClientID identifies a submitting client connection.
type ClientID int

// ClassID identifies a service class (assigned by the classifier).
type ClassID int

// State is a query's lifecycle state.
type State int

// Query lifecycle states.
const (
	StateNew State = iota
	StateQueued
	StateExecuting
	StateDone
	// StateFailed marks a query aborted mid-execution (fault injection or
	// a controller timeout). Failed queries carry a DoneTime like completed
	// ones but never write a snapshot record.
	StateFailed
)

func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateQueued:
		return "queued"
	case StateExecuting:
		return "executing"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Demand is a query's resource requirement.
//
// Work is the execution time, in seconds, when the query runs alone on an
// idle system. While the query makes progress at rate r (r = 1 when alone),
// it consumes r·CPURate CPU-units and r·IORate I/O-units per second; rates
// above 1 model intra-query parallelism (multiple subagents / prefetchers).
type Demand struct {
	Work    float64
	CPURate float64
	IORate  float64
}

// Validate reports whether the demand is executable.
//
//qlint:coldpath allocates only on the invariant-violation error returns; valid demands never reach them
func (d Demand) Validate() error {
	if d.Work <= 0 || math.IsNaN(d.Work) || math.IsInf(d.Work, 0) {
		return fmt.Errorf("engine: non-positive work %v", d.Work)
	}
	if d.CPURate < 0 || d.IORate < 0 {
		return fmt.Errorf("engine: negative resource rate (%v cpu, %v io)", d.CPURate, d.IORate)
	}
	if d.CPURate == 0 && d.IORate == 0 {
		return fmt.Errorf("engine: demand consumes no resources")
	}
	return nil
}

// CPUSeconds returns the total CPU service demand of the query.
func (d Demand) CPUSeconds() float64 { return d.Work * d.CPURate }

// IOSeconds returns the total I/O service demand of the query.
func (d Demand) IOSeconds() float64 { return d.Work * d.IORate }

// Query is one statement moving through the engine. Fields through Demand
// are set by the submitter; the engine fills in the timestamps.
type Query struct {
	ID       QueryID
	Client   ClientID
	Class    ClassID
	Template string  // workload template name, for reporting
	Cost     float64 // optimizer's timeron estimate (what controllers see)
	Demand   Demand
	// Attempt is 0 for a fresh submission and counts up on each retry
	// resubmission after an abort. Monitors and collectors skip
	// Attempt > 0 submissions so a retried query is not double-counted
	// as a new arrival.
	Attempt int

	State      State
	SubmitTime simclock.Time // when the client issued the statement
	StartTime  simclock.Time // when the engine began executing it
	DoneTime   simclock.Time // when execution finished

	remaining float64 // work not yet performed
	rate      float64 // current progress rate
	index     int     // position in the active slice, -1 when inactive
	pooled    bool    // owned by an engine freelist (see AcquireQuery)
}

// ResponseTime returns end-to-end latency (queueing + execution). Valid
// once the query is done.
func (q *Query) ResponseTime() float64 { return q.DoneTime - q.SubmitTime }

// ExecutionTime returns time spent executing inside the engine. Valid once
// the query is done.
func (q *Query) ExecutionTime() float64 { return q.DoneTime - q.StartTime }

// Velocity returns ExecutionTime/ResponseTime — the paper's query velocity
// metric, in (0, 1]. Valid once the query is done.
func (q *Query) Velocity() float64 {
	rt := q.ResponseTime()
	if rt <= 0 {
		return 1
	}
	return q.ExecutionTime() / rt
}

// Interceptor is the hook a workload controller (Query Patroller or the
// Query Scheduler's dispatcher) installs to perform admission control.
// Intercept is called at submit time; returning true means the interceptor
// holds the query (it must call Engine.Start later), false means the engine
// starts it immediately.
type Interceptor interface {
	Intercept(q *Query) (hold bool)
}

// Listener receives query completion notifications. Completion callbacks
// may submit or start new queries.
type Listener func(q *Query)

// Config sets the engine's resource model.
type Config struct {
	// CPUCapacity is the number of CPUs (the paper's box had 2).
	CPUCapacity float64
	// IOCapacity is the effective number of parallel I/O streams the disk
	// array sustains.
	IOCapacity float64
	// ContentionAlpha scales the multiprogramming overhead: every active
	// query runs at 1/(1+alpha·(n-1)) of its contention-free rate. This
	// is what bends the throughput curve down past saturation.
	ContentionAlpha float64
}

// DefaultConfig approximates the paper's testbed.
func DefaultConfig() Config {
	return Config{CPUCapacity: 2, IOCapacity: 14, ContentionAlpha: 0.006}
}

// Snapshot is what the snapshot monitor records per client: the execution
// and response time of the most recently finished statement. This mirrors
// the DB2 snapshot monitor interface the paper uses to observe the OLTP
// class without intercepting it.
type Snapshot struct {
	Client    ClientID
	Class     ClassID
	ExecTime  float64
	RespTime  float64
	DoneAt    simclock.Time
	QueryCost float64
}

// Stats aggregates engine-level counters for calibration and tests.
type Stats struct {
	Submitted      uint64
	Started        uint64
	Completed      uint64
	Aborted        uint64
	Evacuated      uint64 // pulled off mid-execution for failover re-dispatch
	CPUSecondsUsed float64
	IOSecondsUsed  float64
	BusyTime       float64 // virtual seconds with at least one active query
}

// Engine is the simulated DBMS.
type Engine struct {
	cfg   Config
	clock *simclock.Clock
	//lint:ignore ckptcover wiring backref installed by SetInterceptor during construction
	interceptor     Interceptor
	listeners       []Listener
	submitListeners []Listener
	startListeners  []Listener
	abortListeners  []Listener
	abortHandler    func(*Query) bool

	nextID       QueryID
	active       []*Query
	lastUpdate   simclock.Time
	pendingEvt   simclock.EventID
	hasEvt       bool
	completionFn simclock.EventFunc // bound once; reschedule allocates no closure
	speed        float64            // global progress multiplier (1 = nominal, 0 = stalled)

	// Snapshot-monitor records live in a dense slice indexed by client id;
	// clients with huge or negative ids (hand-built tests) spill to a map.
	snaps    []Snapshot
	snapsSet []bool
	snapsFar map[ClientID]Snapshot

	stats Stats

	// weights, when non-nil, turns both stations into weighted fair
	// sharing across service classes (see SetClassWeights).
	weights map[ClassID]float64

	// Hot-path scratch: reused across events so steady-state simulation
	// performs no per-event allocation.
	//lint:ignore ckptcover recycled Query objects; freelist warm-up state is never part of a snapshot
	freelist []*Query // recycled pooled queries (AcquireQuery/Recycle)
	//lint:ignore ckptcover per-tick scratch; dead between advanceTo calls
	doneScratch []*Query // completions harvested by advanceTo
	//lint:ignore ckptcover per-reschedule scratch; dead between recomputeRates calls
	cpuScratch []classScale // per-class station shares (stationScales)
	//lint:ignore ckptcover per-reschedule scratch; dead between recomputeRates calls
	ioScratch []classScale

	// deferResched is set while advanceTo runs completion listeners:
	// reschedule then arms a placeholder (preserving clock sequence
	// numbers) instead of recomputing rates, because the cascade's
	// caller always reschedules once more before handing control back
	// to the clock.
	//lint:ignore ckptcover event-loop-internal flag; never set when the engine is quiescent at a checkpoint
	deferResched bool
}

// New returns an engine on the given clock. Config values must be positive
// (ContentionAlpha may be zero).
func New(cfg Config, clock *simclock.Clock) *Engine {
	if clock == nil {
		panic("engine: nil clock")
	}
	if cfg.CPUCapacity <= 0 || cfg.IOCapacity <= 0 || cfg.ContentionAlpha < 0 {
		panic(fmt.Sprintf("engine: invalid config %+v", cfg))
	}
	e := &Engine{
		cfg:   cfg,
		clock: clock,
		speed: 1,
	}
	e.completionFn = e.onCompletionEvent
	return e
}

// AcquireQuery returns a zeroed query from the engine's freelist (or a
// fresh one when the list is empty). Pooled queries are recycled by the
// engine when they reach a terminal state and every completion listener
// has run; callers must not retain them past their OnDone/OnAbort
// callback. Queries built with a plain &Query{} are never recycled, so
// existing callers keep their ownership semantics.
//
//qlint:hotpath
func (e *Engine) AcquireQuery() *Query {
	if n := len(e.freelist) - 1; n >= 0 {
		q := e.freelist[n]
		e.freelist[n] = nil
		e.freelist = e.freelist[:n]
		return q
	}
	//lint:ignore hotalloc freelist growth: allocates only while the query pool warms up to peak concurrency
	return &Query{pooled: true}
}

// Recycle returns a terminal pooled query to the freelist, zeroing it.
// Non-pooled queries are ignored, so it is always safe to call on a
// query whose provenance is unknown. Recycling a live (queued or
// executing) query panics: that would corrupt the active set.
//
//qlint:hotpath
func (e *Engine) Recycle(q *Query) {
	if q == nil || !q.pooled {
		return
	}
	if q.State == StateQueued || q.State == StateExecuting {
		panic(fmt.Sprintf("engine: recycle of live query %d in state %v", q.ID, q.State))
	}
	*q = Query{pooled: true, index: -1}
	e.freelist = append(e.freelist, q)
}

// Clock returns the engine's simulation clock.
func (e *Engine) Clock() *simclock.Clock { return e.clock }

// Config returns the engine's resource configuration.
func (e *Engine) Config() Config { return e.cfg }

// SetInterceptor installs the admission-control hook. Passing nil removes
// it (all queries start immediately).
func (e *Engine) SetInterceptor(i Interceptor) { e.interceptor = i }

// OnDone registers a completion listener. Listeners run in registration
// order after the finished query's bookkeeping is complete.
func (e *Engine) OnDone(l Listener) {
	if l == nil {
		panic("engine: nil listener")
	}
	e.listeners = append(e.listeners, l)
}

// OnSubmit registers a submission listener, called for every query as it
// arrives (before interception). Workload-detection monitors use this to
// observe classes that are not intercepted.
func (e *Engine) OnSubmit(l Listener) {
	if l == nil {
		panic("engine: nil listener")
	}
	e.submitListeners = append(e.submitListeners, l)
}

// OnStart registers an execution-start listener, called when a query
// transitions to StateExecuting — immediately at submit for unintercepted
// queries, at release for held ones. The trace layer uses this so query
// lifecycle spans carry a real start edge.
func (e *Engine) OnStart(l Listener) {
	if l == nil {
		panic("engine: nil listener")
	}
	e.startListeners = append(e.startListeners, l)
}

// OnAbort registers an abort listener, called whenever an executing query
// is killed via Abort — before the terminal-completion decision, so trace
// layers see every abort whether or not it is later retried.
func (e *Engine) OnAbort(l Listener) {
	if l == nil {
		panic("engine: nil listener")
	}
	e.abortListeners = append(e.abortListeners, l)
}

// SetAbortHandler installs the single claim slot for aborted queries. The
// handler returns true to claim the abort (it will resubmit the query
// itself — a retry — so the regular OnDone listeners do NOT fire) or
// false to let the abort become a terminal failure (OnDone listeners fire
// with the query in StateFailed). Passing nil removes the handler.
func (e *Engine) SetAbortHandler(h func(*Query) bool) { e.abortHandler = h }

// Abort kills an executing query at the current virtual time. The query
// moves to StateFailed with DoneTime set; abort listeners always fire,
// then either the abort handler claims it for retry or the OnDone
// listeners see the terminal failure. Aborting a query that is not
// executing (already done, still queued, or aborted by a racing event)
// returns false and does nothing.
//
//qlint:hotpath
func (e *Engine) Abort(q *Query) bool {
	if q == nil || q.State != StateExecuting {
		return false
	}
	e.advanceTo(e.clock.Now())
	if q.State != StateExecuting {
		return false // completed at exactly this instant
	}
	e.remove(q)
	q.State = StateFailed
	q.DoneTime = e.clock.Now()
	q.remaining = 0
	e.stats.Aborted++
	e.reschedule()
	for _, l := range e.abortListeners {
		l(q)
	}
	if e.abortHandler != nil && e.abortHandler(q) {
		return true // claimed for retry; the claimant recycles it later
	}
	for _, l := range e.listeners {
		l(q)
	}
	if q.pooled {
		e.Recycle(q)
	}
	return true
}

// Evacuate pulls every executing query off the engine for re-dispatch
// elsewhere — the failover path when this engine's backend dies. Each
// query is returned to StateNew with its demand intact and its partial
// progress discarded (the surviving backend re-executes from scratch,
// like a real failover replaying lost in-flight work). The result is
// sorted by query ID ascending, so the re-dispatch order — and with it
// every downstream event sequence number — is deterministic. No done,
// abort, or completion listeners fire: evacuation is not a terminal
// outcome for the query, only for its placement.
func (e *Engine) Evacuate() []*Query {
	e.advanceTo(e.clock.Now())
	if len(e.active) == 0 {
		return nil
	}
	out := make([]*Query, len(e.active))
	copy(out, e.active)
	// Insertion sort by ID: the active slice is small and this avoids a
	// sort.Slice closure allocation on a path tests exercise heavily.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	for _, q := range out {
		e.remove(q)
		q.State = StateNew
		q.remaining = 0
		q.rate = 0
		e.stats.Evacuated++
	}
	e.reschedule()
	return out
}

// Reclaim returns a non-executing query to StateNew so it can be
// re-submitted elsewhere — the interceptor-side half of failover
// evacuation. Accepts queued queries (held by an interceptor) and
// failed ones (claimed for retry); executing queries must go through
// Evacuate instead.
func (e *Engine) Reclaim(q *Query) {
	if q.State != StateQueued && q.State != StateFailed {
		panic(fmt.Sprintf("engine: reclaim of query %d in state %v", q.ID, q.State))
	}
	q.State = StateNew
	q.remaining = 0
	q.rate = 0
}

// SetSpeed scales every active query's progress rate by f — the
// fault-injection hook for engine slowdown (0 < f < 1) and stall (f = 0)
// windows. Speed 1 restores nominal progress. During a stall no
// completion event is armed; raising the speed re-arms it.
func (e *Engine) SetSpeed(f float64) {
	if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		panic(fmt.Sprintf("engine: invalid speed %v", f))
	}
	e.advanceTo(e.clock.Now())
	e.speed = f
	e.reschedule()
}

// Speed returns the current global progress multiplier.
func (e *Engine) Speed() float64 { return e.speed }

// Submit hands a query to the engine at the current virtual time. The
// interceptor, if any, may hold it; otherwise execution starts immediately.
//
//qlint:hotpath
func (e *Engine) Submit(q *Query) {
	if q == nil {
		panic("engine: nil query")
	}
	if err := q.Demand.Validate(); err != nil {
		panic(err)
	}
	if q.State != StateNew {
		panic(fmt.Sprintf("engine: submit of query in state %v", q.State))
	}
	e.nextID++
	q.ID = e.nextID
	q.SubmitTime = e.clock.Now()
	q.index = -1
	e.stats.Submitted++
	for _, l := range e.submitListeners {
		l(q)
	}
	if e.interceptor != nil && e.interceptor.Intercept(q) {
		q.State = StateQueued
		return
	}
	e.Start(q)
}

// Start begins executing a submitted query. Interceptors call this to
// release a held query; Submit calls it directly when nothing holds the
// query.
//
//qlint:hotpath
func (e *Engine) Start(q *Query) {
	if q.State != StateNew && q.State != StateQueued {
		panic(fmt.Sprintf("engine: start of query %d in state %v", q.ID, q.State))
	}
	if err := q.Demand.Validate(); err != nil {
		panic(err) // interceptors may rewrite demand; re-check at start
	}
	q.remaining = q.Demand.Work
	e.advanceTo(e.clock.Now())
	q.State = StateExecuting
	q.StartTime = e.clock.Now()
	q.index = len(e.active)
	e.active = append(e.active, q)
	e.stats.Started++
	e.reschedule()
	for _, l := range e.startListeners {
		l(q)
	}
}

// Active returns the number of currently executing queries.
func (e *Engine) Active() int { return len(e.active) }

// ActiveQueries returns the currently executing queries. The slice is
// owned by the engine; callers must not mutate it.
func (e *Engine) ActiveQueries() []*Query { return e.active }

// ActiveCostByClass sums the timeron cost of executing queries per class —
// what a controller reads to enforce class cost limits.
func (e *Engine) ActiveCostByClass() map[ClassID]float64 {
	m := make(map[ClassID]float64)
	for _, q := range e.active {
		m[q.Class] += q.Cost
	}
	return m
}

// snapDenseLimit bounds the dense snapshot table: pool-assigned client
// ids are small and sequential, so virtually all records land here; ids
// outside [0, snapDenseLimit) fall back to the spill map.
const snapDenseLimit = 1 << 22

func (e *Engine) recordSnapshot(s Snapshot) {
	id := s.Client
	if id >= 0 && id < snapDenseLimit {
		for len(e.snaps) <= int(id) {
			e.snaps = append(e.snaps, Snapshot{})
			e.snapsSet = append(e.snapsSet, false)
		}
		e.snaps[id] = s
		e.snapsSet[id] = true
		return
	}
	if e.snapsFar == nil {
		//lint:ignore hotalloc one-time lazy init of the far-client spill map
		e.snapsFar = make(map[ClientID]Snapshot)
	}
	e.snapsFar[id] = s
}

// LastFinished returns the snapshot-monitor record for a client: execution
// and response time of its most recently finished statement.
func (e *Engine) LastFinished(c ClientID) (Snapshot, bool) {
	if c >= 0 && int(c) < len(e.snaps) {
		return e.snaps[c], e.snapsSet[c]
	}
	s, ok := e.snapsFar[c]
	return s, ok
}

// Stats returns cumulative engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// Utilization returns the current requested load on each station relative
// to capacity (may exceed 1 when oversubscribed).
func (e *Engine) Utilization() (cpu, io float64) {
	var cpuLoad, ioLoad float64
	for _, q := range e.active {
		cpuLoad += q.Demand.CPURate
		ioLoad += q.Demand.IORate
	}
	return cpuLoad / e.cfg.CPUCapacity, ioLoad / e.cfg.IOCapacity
}

// advanceTo applies progress to all active queries for the interval since
// the last update, harvesting any completions.
func (e *Engine) advanceTo(now simclock.Time) {
	dt := now - e.lastUpdate
	if dt < 0 {
		panic(fmt.Sprintf("engine: time moved backwards (%v -> %v)", e.lastUpdate, now))
	}
	e.lastUpdate = now
	if dt == 0 || len(e.active) == 0 {
		return
	}
	e.stats.BusyTime += dt
	// done reuses engine-owned scratch: nested advanceTo calls from
	// completion listeners always see dt == 0 and return before this
	// point, so the buffer is never aliased.
	done := e.doneScratch[:0]
	for _, q := range e.active {
		progress := q.rate * dt
		if progress > q.remaining {
			progress = q.remaining
		}
		q.remaining -= progress
		e.stats.CPUSecondsUsed += progress * q.Demand.CPURate
		e.stats.IOSecondsUsed += progress * q.Demand.IORate
		if q.remaining <= completionEpsilon*q.Demand.Work {
			done = append(done, q)
		}
	}
	for _, q := range done {
		e.remove(q)
		q.State = StateDone
		q.DoneTime = now
		q.remaining = 0
		e.stats.Completed++
		e.recordSnapshot(Snapshot{
			Client:    q.Client,
			Class:     q.Class,
			ExecTime:  q.ExecutionTime(),
			RespTime:  q.ResponseTime(),
			DoneAt:    now,
			QueryCost: q.Cost,
		})
	}
	// Notify after all bookkeeping so listeners observe a consistent
	// engine; listeners may start queries, which re-enters advanceTo with
	// dt == 0 and then reschedules. Pooled queries return to the freelist
	// once their listeners have run (explicit free on terminal state).
	//
	// Reschedules triggered from inside this loop (every listener-driven
	// Submit/Start/Abort ends in one) are deferred to placeholders: only
	// the caller's trailing reschedule recomputes rates, so a completion
	// cascade costs one O(active) rate pass instead of one per query it
	// starts. Every advanceTo caller reschedules before returning to the
	// clock, so a placeholder never survives to fire.
	e.deferResched = true
	for i, q := range done {
		for _, l := range e.listeners {
			l(q)
		}
		done[i] = nil
		if q.pooled {
			e.Recycle(q)
		}
	}
	e.deferResched = false
	e.doneScratch = done[:0]
}

// completionEpsilon absorbs floating-point residue when a completion event
// fires at the exact computed finish time.
const completionEpsilon = 1e-9

// remove takes q out of the active set in O(1).
func (e *Engine) remove(q *Query) {
	i := q.index
	last := len(e.active) - 1
	e.active[i] = e.active[last]
	e.active[i].index = i
	e.active[last] = nil
	e.active = e.active[:last]
	q.index = -1
}

// SetClassWeights switches both stations to weighted fair sharing across
// service classes: under contention, each class with runnable work
// receives station capacity in proportion to its weight, with any share a
// class cannot use redistributed to the others (work-conserving).
// Classes absent from the map get weight 1; passing nil restores plain
// per-query processor sharing.
//
// This is the "control mechanism inside the DBMS itself" the paper's
// future-work section calls for (and what DB2 later shipped as WLM):
// it shifts resources between classes without intercepting any query, so
// it can manage sub-second OLTP work that admission control cannot touch.
func (e *Engine) SetClassWeights(w map[ClassID]float64) {
	for c, v := range w {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("engine: invalid weight %v for class %d", v, c))
		}
	}
	e.advanceTo(e.clock.Now())
	if w == nil {
		e.weights = nil
	} else {
		e.weights = make(map[ClassID]float64, len(w))
		for c, v := range w {
			e.weights[c] = v
		}
	}
	e.reschedule()
}

// ClassWeight returns the effective sharing weight of a class.
func (e *Engine) ClassWeight(c ClassID) float64 {
	if e.weights == nil {
		return 1
	}
	if w, ok := e.weights[c]; ok {
		return w
	}
	return 1
}

// recomputeRates assigns each active query its progress rate under the
// current mix: processor sharing per station (optionally weighted by
// class) plus the MPL contention overhead. A query is limited by the more
// congested of the stations it uses, and can never progress faster than 1
// (its stand-alone speed). It returns the shortest remaining/rate
// horizon over the active set (+Inf when idle or stalled), computed in
// the same pass, so reschedule can arm the next completion event without
// walking the active set again.
func (e *Engine) recomputeRates() float64 {
	next := math.Inf(1)
	n := len(e.active)
	if n == 0 {
		return next
	}
	overhead := 1 + e.cfg.ContentionAlpha*float64(n-1)
	if e.weights == nil {
		// Plain processor sharing: both stations give every class the
		// same scale, so the per-class water-filling machinery is
		// bypassed. The totals accumulate in active-slice order —
		// exactly the order stationScales sums them — so every float
		// (and therefore every event time) matches the weighted path's
		// bookkeeping bit for bit.
		var cpuTotal, ioTotal float64
		for _, q := range e.active {
			cpuTotal += q.Demand.CPURate
			ioTotal += q.Demand.IORate
		}
		cpuScale, ioScale := 1.0, 1.0
		if cpuTotal > e.cfg.CPUCapacity {
			cpuScale = e.cfg.CPUCapacity / cpuTotal
		}
		if ioTotal > e.cfg.IOCapacity {
			ioScale = e.cfg.IOCapacity / ioTotal
		}
		for _, q := range e.active {
			r := 1.0
			if q.Demand.CPURate > 0 && cpuScale < r {
				r = cpuScale
			}
			if q.Demand.IORate > 0 && ioScale < r {
				r = ioScale
			}
			q.rate = r * e.speed / overhead
			if q.rate <= 0 {
				if e.speed > 0 {
					panic(fmt.Sprintf("engine: query %d has non-positive rate", q.ID))
				}
				continue
			}
			if t := q.remaining / q.rate; t < next {
				next = t
			}
		}
		return next
	}
	e.cpuScratch = e.stationScales(e.cpuScratch[:0], demandCPURate, e.cfg.CPUCapacity)
	e.ioScratch = e.stationScales(e.ioScratch[:0], demandIORate, e.cfg.IOCapacity)
	for _, q := range e.active {
		r := 1.0
		if q.Demand.CPURate > 0 {
			if s := scaleFor(e.cpuScratch, q.Class); s < r {
				r = s
			}
		}
		if q.Demand.IORate > 0 {
			if s := scaleFor(e.ioScratch, q.Class); s < r {
				r = s
			}
		}
		q.rate = r * e.speed / overhead
		if q.rate <= 0 {
			if e.speed > 0 {
				panic(fmt.Sprintf("engine: query %d has non-positive rate", q.ID))
			}
			continue
		}
		if t := q.remaining / q.rate; t < next {
			next = t
		}
	}
	return next
}

// classScale is one per-class accumulator in the reusable station-share
// scratch buffers. The class count is tiny (the paper runs three), so a
// linear scan beats any map.
type classScale struct {
	id     ClassID
	demand float64
	scale  float64
	done   bool
	mark   bool
}

func scaleFor(buf []classScale, c ClassID) float64 {
	for i := range buf {
		if buf[i].id == c {
			return buf[i].scale
		}
	}
	return 1
}

// demandCPURate and demandIORate are the station accessors passed to
// stationScales. Package-level funcs rather than literals so the hot
// reschedule path does not box a fresh closure per call.
func demandCPURate(d Demand) float64 { return d.CPURate }
func demandIORate(d Demand) float64  { return d.IORate }

// stationScales computes, per class, the fraction of its requested rate a
// station can deliver, accumulating into the caller-provided scratch
// buffer (passed sliced to length 0, returned for reuse). Without class
// weights every class sees the same scale (plain processor sharing). With
// weights, capacity is divided by weighted max-min fairness: satisfied
// classes keep their full demand and the remainder is re-divided among
// the still-contending classes.
//
// Per-class demand accumulates in active-slice order and the water
// filling iterates classes in sorted-id order — exactly the orders the
// previous map-based implementation used — so every floating-point sum
// (and therefore every event time) is bit-identical to the seed path.
func (e *Engine) stationScales(buf []classScale, rate func(Demand) float64, capacity float64) []classScale {
	var total float64
	for _, q := range e.active {
		r := rate(q.Demand)
		idx := -1
		for i := range buf {
			if buf[i].id == q.Class {
				idx = i
				break
			}
		}
		if idx < 0 {
			buf = append(buf, classScale{id: q.Class})
			idx = len(buf) - 1
		}
		buf[idx].demand += r
		total += r
	}
	if total <= capacity {
		for i := range buf {
			buf[i].scale = 1
		}
		return buf
	}
	if e.weights == nil {
		s := capacity / total
		for i := range buf {
			buf[i].scale = s
		}
		return buf
	}
	// Weighted water-filling over the contending classes, iterated in
	// sorted class order: any other order would perturb the
	// floating-point accumulation (and therefore event times) from run
	// to run, breaking reproducibility. Class ids are unique, so this
	// insertion sort orders buf exactly as sort.Slice would — without
	// the per-call closure and interface boxing.
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && buf[j].id < buf[j-1].id; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	remaining := capacity
	npending := 0
	for i := range buf {
		if buf[i].demand > 0 {
			buf[i].done = false
			npending++
		} else {
			buf[i].scale = 1
			buf[i].done = true
		}
	}
	for npending > 0 {
		var weightSum float64
		for i := range buf {
			if !buf[i].done {
				weightSum += e.ClassWeight(buf[i].id)
			}
		}
		// Find classes whose fair share covers their whole demand. The
		// pass is decided against a fixed remaining/weightSum and only
		// then applied.
		anyDone := false
		for i := range buf {
			buf[i].mark = !buf[i].done && remaining*e.ClassWeight(buf[i].id)/weightSum >= buf[i].demand
			anyDone = anyDone || buf[i].mark
		}
		if anyDone {
			for i := range buf {
				if buf[i].mark {
					buf[i].scale = 1
					remaining -= buf[i].demand
					buf[i].done = true
					npending--
				}
			}
			continue
		}
		// Everyone left is constrained: split the remainder by weight.
		for i := range buf {
			if !buf[i].done {
				buf[i].scale = remaining * e.ClassWeight(buf[i].id) / weightSum / buf[i].demand
				buf[i].done = true
				npending--
			}
		}
	}
	return buf
}

// reschedule recomputes rates and re-arms the next-completion event.
func (e *Engine) reschedule() {
	if e.hasEvt {
		e.clock.Cancel(e.pendingEvt)
		e.hasEvt = false
	}
	if e.deferResched {
		// Mid-cascade (inside advanceTo's completion-listener loop): the
		// caller that entered advanceTo always reschedules again before
		// the clock pops another event, so recomputing rates here is
		// wasted work and the armed time is irrelevant — the trailing
		// reschedule cancels it. A placeholder is armed anyway, under
		// exactly the eager path's conditions, because every
		// AfterCancellable call consumes a clock sequence number and
		// sequence numbers decide FIFO tie-breaking: skipping the call
		// would shift every later event's tiebreak order.
		if len(e.active) == 0 || e.speed <= 0 {
			return
		}
		e.pendingEvt = e.clock.AfterCancellable(minEventStep, e.completionFn)
		e.hasEvt = true
		return
	}
	next := e.recomputeRates()
	if len(e.active) == 0 {
		return
	}
	if e.speed <= 0 {
		return // stalled: no progress, so no completion event to arm
	}
	// Guard against a zero-length step looping forever on fp residue.
	if next < minEventStep {
		next = minEventStep
	}
	e.pendingEvt = e.clock.AfterCancellable(next, e.completionFn)
	e.hasEvt = true
}

const minEventStep = 1e-9

// onCompletionEvent is the engine's event-loop tick: every completion,
// rate recomputation, and reschedule in a steady-state run funnels
// through here.
//
//qlint:hotpath
func (e *Engine) onCompletionEvent() {
	e.hasEvt = false
	e.advanceTo(e.clock.Now())
	e.reschedule()
}

// Quiesce advances internal accounting to the current time without firing
// events — used by monitors that read utilization mid-interval.
func (e *Engine) Quiesce() {
	e.advanceTo(e.clock.Now())
	e.reschedule()
}
