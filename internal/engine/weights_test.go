package engine

import (
	"testing"
)

func classQuery(class ClassID, work float64) *Query {
	return &Query{Class: class, Demand: Demand{Work: work, CPURate: 1}}
}

func TestWeightedSharingFavorsHeavyClass(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	e.SetClassWeights(map[ClassID]float64{1: 3, 2: 1})
	a := classQuery(1, 10)
	b := classQuery(2, 10)
	e.Submit(a)
	e.Submit(b)
	clock.Run()
	// Class 1 gets 3/4 of the CPU: a finishes in 10/(3/4) = 13.33s;
	// b runs at 1/4 until then (3.33 done), then alone: 20s total.
	if !almost(a.DoneTime, 40.0/3) {
		t.Fatalf("a done at %v, want 13.33", a.DoneTime)
	}
	if !almost(b.DoneTime, 20) {
		t.Fatalf("b done at %v, want 20", b.DoneTime)
	}
}

func TestEqualWeightsMatchPlainSharing(t *testing.T) {
	run := func(weighted bool) (float64, float64) {
		e, clock := newTestEngine(1, 1)
		if weighted {
			e.SetClassWeights(map[ClassID]float64{1: 2, 2: 2})
		}
		a := classQuery(1, 10)
		b := classQuery(2, 10)
		e.Submit(a)
		e.Submit(b)
		clock.Run()
		return a.DoneTime, b.DoneTime
	}
	a1, b1 := run(false)
	a2, b2 := run(true)
	if !almost(a1, a2) || !almost(b1, b2) {
		t.Fatalf("equal weights diverge from plain sharing: %v/%v vs %v/%v", a1, b1, a2, b2)
	}
}

func TestWeightedSharingIsWorkConserving(t *testing.T) {
	e, clock := newTestEngine(2, 1)
	// Class 1 has weight 9 but only demands 0.5 CPU; the unused share
	// must flow to class 2 instead of idling.
	e.SetClassWeights(map[ClassID]float64{1: 9, 2: 1})
	a := &Query{Class: 1, Demand: Demand{Work: 10, CPURate: 0.5}}
	b := &Query{Class: 2, Demand: Demand{Work: 10, CPURate: 2}}
	e.Submit(a)
	e.Submit(b)
	clock.Run()
	// a is unconstrained (0.5 < its 1.8 share): finishes at 10.
	if !almost(a.DoneTime, 10) {
		t.Fatalf("a done at %v, want 10", a.DoneTime)
	}
	// b gets the remaining 1.5 of 2 CPUs: rate 0.75 for 10s of work,
	// then full speed after a leaves: 10*... work done by t=10 is 7.5,
	// remaining 2.5 at rate 1 -> 12.5s total.
	if !almost(b.DoneTime, 12.5) {
		t.Fatalf("b done at %v, want 12.5", b.DoneTime)
	}
}

func TestWeightsOnlyMatterUnderContention(t *testing.T) {
	e, clock := newTestEngine(4, 4)
	e.SetClassWeights(map[ClassID]float64{1: 100, 2: 1})
	a := classQuery(1, 5)
	b := classQuery(2, 5)
	e.Submit(a)
	e.Submit(b)
	clock.Run()
	if !almost(a.ExecutionTime(), 5) || !almost(b.ExecutionTime(), 5) {
		t.Fatalf("weights throttled an uncontended station: %v/%v",
			a.ExecutionTime(), b.ExecutionTime())
	}
}

func TestUnlistedClassDefaultsToWeightOne(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	e.SetClassWeights(map[ClassID]float64{1: 1}) // class 2 unlisted
	a := classQuery(1, 10)
	b := classQuery(2, 10)
	e.Submit(a)
	e.Submit(b)
	clock.Run()
	if !almost(a.DoneTime, 20) || !almost(b.DoneTime, 20) {
		t.Fatalf("unlisted class not at weight 1: %v/%v", a.DoneTime, b.DoneTime)
	}
	if e.ClassWeight(2) != 1 {
		t.Fatalf("ClassWeight(2) = %v", e.ClassWeight(2))
	}
}

func TestSetWeightsMidRunReallocates(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	a := classQuery(1, 10)
	b := classQuery(2, 10)
	e.Submit(a)
	e.Submit(b)
	// Halfway through, triple class 1's share.
	clock.At(10, func() { e.SetClassWeights(map[ClassID]float64{1: 3}) })
	clock.Run()
	// First 10s: 5 work each. Then a at 3/4: 5/(0.75) = 6.67 more
	// -> a done at 16.67; b: 1.67 more done by then, 3.33 left alone
	// -> 20s.
	if !almost(a.DoneTime, 50.0/3) {
		t.Fatalf("a done at %v, want 16.67 after reweighting", a.DoneTime)
	}
	if !almost(b.DoneTime, 20) {
		t.Fatalf("b done at %v, want 20", b.DoneTime)
	}
}

func TestClearWeightsRestoresPlainSharing(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	e.SetClassWeights(map[ClassID]float64{1: 8})
	e.SetClassWeights(nil)
	a := classQuery(1, 10)
	b := classQuery(2, 10)
	e.Submit(a)
	e.Submit(b)
	clock.Run()
	if !almost(a.DoneTime, 20) || !almost(b.DoneTime, 20) {
		t.Fatalf("nil weights did not restore fair sharing: %v/%v", a.DoneTime, b.DoneTime)
	}
}

func TestInvalidWeightPanics(t *testing.T) {
	e, _ := newTestEngine(1, 1)
	for _, w := range []float64{0, -1} {
		w := w
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("weight %v did not panic", w)
				}
			}()
			e.SetClassWeights(map[ClassID]float64{1: w})
		}()
	}
}

func TestThreeClassWeightedSplit(t *testing.T) {
	e, clock := newTestEngine(1, 1)
	e.SetClassWeights(map[ClassID]float64{1: 2, 2: 1, 3: 1})
	a := classQuery(1, 10)
	b := classQuery(2, 10)
	c := classQuery(3, 10)
	e.Submit(a)
	e.Submit(b)
	e.Submit(c)
	clock.RunUntil(10)
	// Shares 1/2, 1/4, 1/4 -> remaining work 5, 7.5, 7.5 at t=10.
	// Verify via completion ordering: a first, then b and c together.
	clock.Run()
	if !(a.DoneTime < b.DoneTime && almost(b.DoneTime, c.DoneTime)) {
		t.Fatalf("completion times %v/%v/%v violate weighted ordering",
			a.DoneTime, b.DoneTime, c.DoneTime)
	}
}

func TestWeightedConservation(t *testing.T) {
	e, clock := newTestEngine(2, 3)
	e.SetClassWeights(map[ClassID]float64{1: 5, 2: 1})
	var want float64
	for i := 0; i < 6; i++ {
		q := &Query{Class: ClassID(1 + i%2), Demand: Demand{Work: 5, CPURate: 1, IORate: 0.5}}
		want += q.Demand.CPUSeconds()
		e.Submit(q)
	}
	clock.Run()
	st := e.Stats()
	if !almost(st.CPUSecondsUsed, want) {
		t.Fatalf("CPU used %v, want %v", st.CPUSecondsUsed, want)
	}
	if st.CPUSecondsUsed > e.Config().CPUCapacity*st.BusyTime+1e-6 {
		t.Fatal("capacity bound violated under weights")
	}
}
