package utility

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightFromImportance(t *testing.T) {
	if WeightFromImportance(1) != 1 {
		t.Fatal("level 1 weight must be 1")
	}
	if WeightFromImportance(2) != ImportanceBase {
		t.Fatal("level 2 weight must be the base")
	}
	if WeightFromImportance(3) != ImportanceBase*ImportanceBase {
		t.Fatal("level 3 weight must be base squared")
	}
}

func TestWeightFromImportanceInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("importance 0 did not panic")
		}
	}()
	WeightFromImportance(0)
}

func TestVelocityUtilityShape(t *testing.T) {
	u := NewVelocity(0.5, 2)
	if u.Utility(0) != 0 {
		t.Fatal("zero velocity must have zero utility")
	}
	atGoal := u.Utility(0.5)
	if math.Abs(atGoal-u.Weight) > 1e-12 {
		t.Fatalf("utility at goal = %v, want weight %v", atGoal, u.Weight)
	}
	if u.Utility(0.25) >= atGoal {
		t.Fatal("sub-goal utility must be below goal utility")
	}
	if u.Utility(1) <= atGoal {
		t.Fatal("over-goal bonus missing")
	}
	if u.Utility(1)-atGoal > 0.2 {
		t.Fatal("over-goal bonus too large; satisfied classes would hoard")
	}
}

func TestVelocityUtilityMonotoneProperty(t *testing.T) {
	u := NewVelocity(0.4, 3)
	f := func(a, b float64) bool {
		a, b = math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		return u.Utility(a) <= u.Utility(b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestVelocityUtilityClampsOutOfRange(t *testing.T) {
	u := NewVelocity(0.5, 1)
	if u.Utility(-1) != u.Utility(0) {
		t.Fatal("negative velocity not clamped")
	}
	if u.Utility(2) != u.Utility(1) {
		t.Fatal("velocity above 1 not clamped")
	}
}

func TestVelocityGoalOneEdge(t *testing.T) {
	u := NewVelocity(1, 1)
	if u.Utility(1) != u.Weight {
		t.Fatal("goal-1 class utility at 1 should equal weight")
	}
}

func TestNewVelocityValidation(t *testing.T) {
	for _, g := range []float64{0, -0.5, 1.5} {
		g := g
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("goal %v did not panic", g)
				}
			}()
			NewVelocity(g, 1)
		}()
	}
}

func TestResponseTimeUtilityShape(t *testing.T) {
	u := NewResponseTime(0.25, 3)
	atGoal := u.Utility(0.25)
	if math.Abs(atGoal-u.Weight) > 1e-12 {
		t.Fatalf("utility at goal = %v, want %v", atGoal, u.Weight)
	}
	if u.Utility(0.5) >= atGoal {
		t.Fatal("slower than goal must score below goal")
	}
	if u.Utility(0.1) <= atGoal {
		t.Fatal("faster than goal should earn the bonus")
	}
	if u.Utility(0) != u.Weight+0.1 {
		t.Fatalf("zero response time = %v", u.Utility(0))
	}
}

func TestResponseTimeUtilityMonotoneDecreasing(t *testing.T) {
	u := NewResponseTime(0.25, 2)
	prev := math.Inf(1)
	for tt := 0.01; tt < 3; tt += 0.01 {
		v := u.Utility(tt)
		if v > prev+1e-12 {
			t.Fatalf("utility increased with response time at %v", tt)
		}
		prev = v
	}
}

func TestResponseTimePenaltySteepNearGoal(t *testing.T) {
	u := NewResponseTime(0.25, 1)
	// The cubic penalty: 10% over goal loses more than the flat bonus
	// 10% under goal gains — the planner should prefer a margin below.
	lossOver := u.Utility(0.25) - u.Utility(0.275)
	gainUnder := u.Utility(0.225) - u.Utility(0.25)
	if lossOver <= gainUnder {
		t.Fatalf("penalty %v not steeper than bonus %v near goal", lossOver, gainUnder)
	}
}

func TestNewResponseTimeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive goal did not panic")
		}
	}()
	NewResponseTime(0, 1)
}

func TestViolatedImportantClassDominates(t *testing.T) {
	// The paper's semantics: a violated importance-3 class outweighs a
	// satisfied importance-1 and importance-2 class combined.
	c1 := NewVelocity(0.4, 1)
	c2 := NewVelocity(0.6, 2)
	c3 := NewResponseTime(0.25, 3)
	// Utility recovered by fixing class 3 from a 2x violation:
	gain3 := c3.Utility(0.25) - c3.Utility(0.5)
	// Utility both OLAP classes could lose falling from ideal to goal:
	loss12 := (c1.Utility(1) - c1.Utility(0.4)) + (c2.Utility(1) - c2.Utility(0.6))
	if gain3 <= loss12 {
		t.Fatalf("violated class 3 gain %v must dominate OLAP bonus loss %v", gain3, loss12)
	}
}

func TestImportanceNotPriority(t *testing.T) {
	// A satisfied importance-3 class gains almost nothing from extra
	// resources compared to a violated importance-1 class.
	c3 := NewResponseTime(0.25, 3)
	c1 := NewVelocity(0.4, 1)
	gainSatisfied := c3.Utility(0.1) - c3.Utility(0.2) // both under goal
	gainViolated := c1.Utility(0.4) - c1.Utility(0.2)  // both at/below goal
	if gainSatisfied >= gainViolated {
		t.Fatalf("satisfied important class gain %v should not beat violated class gain %v",
			gainSatisfied, gainViolated)
	}
}
