// Package utility implements the utility functions the Scheduling Planner
// optimizes: each service class's goal and business importance are folded
// into a scalar function of the class's (predicted) performance, and the
// planner picks the scheduling plan maximizing total system utility.
//
// The curves encode the paper's semantics of importance: "The importance
// level of a class is in effect only when the class violates its
// performance goals and is not synonymous with priority." Below its goal a
// class earns utility steeply in proportion to its importance weight;
// above its goal only a small bonus remains, so a satisfied class — even a
// very important one — does not hoard resources.
package utility

import (
	"fmt"
	"math"
)

// Function maps a class's performance-metric value to utility.
type Function interface {
	// Utility returns the utility of the given metric value.
	Utility(perf float64) float64
	// Goal returns the goal value the function is built around.
	Goal() float64
}

// ImportanceBase is the default base of the exponential importance
// weighting: a class at importance level k has weight ImportanceBase^(k-1).
// Exponential spacing makes a violated higher-importance class dominate
// any number of merely-sub-goal lower classes, matching the paper's
// behaviour in heavy periods (Class 3 claims over half the resources).
const ImportanceBase = 4.0

// WeightFromImportance converts a discrete importance level (1, 2, 3, ...)
// into a utility weight.
func WeightFromImportance(level int) float64 {
	if level < 1 {
		panic(fmt.Sprintf("utility: importance level %d < 1", level))
	}
	return math.Pow(ImportanceBase, float64(level-1))
}

// overBonus is the flat utility slope available above the goal — enough
// that spare resources are still put to use, small enough that a satisfied
// class loses any contest with a violated one.
const overBonus = 0.1

// Velocity is the utility curve for an OLAP class with a query-velocity
// goal ("at least G"). Utility rises linearly from 0 (velocity 0) to
// Weight (velocity == G), then gains only a small bonus up to velocity 1.
type Velocity struct {
	G      float64 // goal velocity in (0, 1]
	Weight float64 // importance weight
}

// NewVelocity builds a velocity utility for goal g and importance level.
func NewVelocity(g float64, importance int) Velocity {
	if g <= 0 || g > 1 {
		panic(fmt.Sprintf("utility: velocity goal %v out of (0,1]", g))
	}
	return Velocity{G: g, Weight: WeightFromImportance(importance)}
}

// Goal implements Function.
func (u Velocity) Goal() float64 { return u.G }

// Utility implements Function.
func (u Velocity) Utility(v float64) float64 {
	v = clamp01(v)
	if v < u.G {
		return u.Weight * (v / u.G)
	}
	if u.G >= 1 {
		return u.Weight
	}
	return u.Weight + overBonus*(v-u.G)/(1-u.G)
}

// ResponseTime is the utility curve for a class with an average
// response-time goal ("at most G seconds"). Utility is Weight at t == G,
// falls off as (G/t)^3 for slower responses — steep near the goal, so the
// planner settles slightly below the goal rather than oscillating just
// above it — and gains a small bonus for faster ones.
type ResponseTime struct {
	G      float64 // goal in seconds
	Weight float64
}

// respExponent steepens the below-goal penalty; see the type comment.
const respExponent = 3

// NewResponseTime builds a response-time utility for goal g seconds and
// importance level.
func NewResponseTime(g float64, importance int) ResponseTime {
	if g <= 0 {
		panic(fmt.Sprintf("utility: response-time goal %v must be positive", g))
	}
	return ResponseTime{G: g, Weight: WeightFromImportance(importance)}
}

// Goal implements Function.
func (u ResponseTime) Goal() float64 { return u.G }

// Utility implements Function.
func (u ResponseTime) Utility(t float64) float64 {
	if t <= 0 {
		return u.Weight + overBonus
	}
	if t > u.G {
		return u.Weight * math.Pow(u.G/t, respExponent)
	}
	return u.Weight + overBonus*(u.G-t)/u.G
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
