// Package trace records structured events from the engine, the patroller,
// and the Query Scheduler into a bounded ring buffer — the observability
// layer for debugging controller behaviour ("why was this query held for
// four minutes?") without scattering print statements through the hot
// paths. Tracing is strictly opt-in: nothing is recorded unless a Tracer
// is attached.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/patroller"
	"repro/internal/router"
	"repro/internal/simclock"
	"repro/internal/solver"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	QuerySubmit Kind = iota
	QueryStart
	QueryDone
	QueryIntercepted
	QueryReleased
	PlanChanged
	WorkloadShift
	QueryAborted
	QueryRetried
	// QueryRouted is a fleet routing decision: one per submitted query,
	// with the chosen backend (1-based) in Value. Single-backend runs
	// never emit it, keeping their exports byte-identical.
	QueryRouted
	// QueryRerouted is a failover re-dispatch: a query evacuated from a
	// crashed backend landing on a survivor. Value carries the new
	// backend (1-based); Detail names both ends ("backend=F->T").
	QueryRerouted
)

func (k Kind) String() string {
	switch k {
	case QuerySubmit:
		return "submit"
	case QueryStart:
		return "start"
	case QueryDone:
		return "done"
	case QueryIntercepted:
		return "intercept"
	case QueryReleased:
		return "release"
	case PlanChanged:
		return "plan"
	case WorkloadShift:
		return "shift"
	case QueryAborted:
		return "abort"
	case QueryRetried:
		return "retry"
	case QueryRouted:
		return "route"
	case QueryRerouted:
		return "reroute"
	default:
		//lint:ignore hotalloc unreachable for the known kinds emitted on the hot path
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	Seq    uint64
	Time   simclock.Time
	Kind   Kind
	Class  engine.ClassID
	Query  engine.QueryID
	Client engine.ClientID
	// Period is the 0-based schedule period the event falls in, stamped
	// by the tracer's period mapper (0 when no mapper is installed).
	// Report tables number the same periods 1-based.
	Period int
	// Plan is the scheduling-plan version in force when the event was
	// emitted: 0 until the first PlanChanged event, then incremented by
	// each one.
	Plan int
	// Value carries the kind-specific number: query cost for lifecycle
	// events, total plan utility for PlanChanged, signal value for
	// WorkloadShift.
	Value float64
	// Detail is a short human-readable annotation.
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%10.2f %-9s class=%d query=%d client=%d value=%.2f %s",
		e.Time, e.Kind, e.Class, e.Query, e.Client, e.Value, e.Detail)
}

// numKinds sizes the dense per-kind counter array (kinds are small
// consecutive constants; anything else spills to farCounts).
const numKinds = int(QueryRerouted) + 1

// traceBatchSize bounds the batched-dispatch buffer: Emit appends events
// here and the JSONL encoding happens in batches — when the buffer
// fills, at clock boundaries, and before anything reads sink state.
const traceBatchSize = 256

// Tracer is a bounded in-memory event recorder. The zero value is not
// usable; construct with New.
type Tracer struct {
	cap       int
	events    []Event
	start     int // ring start index
	seq       uint64
	dropped   uint64
	counts    [numKinds]uint64
	farCounts map[Kind]uint64 // out-of-range kinds (never in normal runs)

	periodOf  func(simclock.Time) int // stamps Event.Period; may be nil
	plan      int                     // current plan version
	lastPlan  string                  // last emitted plan detail (dedup)
	sink      io.Writer               // lossless JSONL sink; may be nil
	sinkErr   error                   // first sink write error, latched
	sinkBytes int64                   // bytes written to the sink so far

	pending []Event // events awaiting JSONL encoding (batched dispatch)
	scratch []byte  // reused JSONL line-encoding buffer
	//lint:ignore ckptcover reused formatting scratch; dead between Emit calls
	detailBuf []byte // reused annotation-formatting buffer
}

// New returns a tracer retaining the most recent capacity events.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: non-positive capacity %d", capacity))
	}
	return &Tracer{cap: capacity}
}

// SetPeriodMapper installs the schedule's time→period function; every
// subsequent event is stamped with its 0-based period.
func (t *Tracer) SetPeriodMapper(f func(simclock.Time) int) { t.periodOf = f }

// Emit records an event, evicting the oldest when full. The tracer
// stamps Seq, Period (when a mapper is installed), and Plan; a
// PlanChanged event bumps the plan version before being stamped, so it
// carries the version it introduces.
//
//qlint:hotpath
func (t *Tracer) Emit(e Event) {
	t.seq++
	e.Seq = t.seq
	if t.periodOf != nil {
		e.Period = t.periodOf(e.Time)
	}
	if e.Kind == PlanChanged {
		t.plan++
	}
	e.Plan = t.plan
	if k := int(e.Kind); k >= 0 && k < numKinds {
		t.counts[k]++
	} else {
		if t.farCounts == nil {
			//lint:ignore hotalloc one-time lazy init of the far-class count map
			t.farCounts = make(map[Kind]uint64)
		}
		t.farCounts[e.Kind]++
	}
	if t.sink != nil && t.sinkErr == nil {
		t.pending = append(t.pending, e)
		if len(t.pending) >= traceBatchSize {
			t.Flush()
		}
	}
	if len(t.events) < t.cap {
		t.events = append(t.events, e)
		return
	}
	t.events[t.start] = e
	t.start = (t.start + 1) % t.cap
	t.dropped++
}

// Flush drains the batched events to the JSONL sink, encoding each line
// into a reused scratch buffer. Lines are written one Write call at a
// time because the rotating sink relies on whole-line writes. Emit calls
// it when the batch buffer fills; SinkBytes/SinkErr (and therefore every
// checkpoint capture and end-of-run export) force it, so no reader ever
// observes sink state with events still buffered.
func (t *Tracer) Flush() {
	if len(t.pending) == 0 {
		return
	}
	if t.sink == nil || t.sinkErr != nil {
		t.pending = t.pending[:0]
		return
	}
	for i := range t.pending {
		line := appendEventLine(t.scratch[:0], &t.pending[i])
		t.scratch = line
		n, err := t.sink.Write(line)
		t.sinkBytes += int64(n)
		if err != nil {
			t.sinkErr = err
			break
		}
	}
	t.pending = t.pending[:0]
}

// Len returns the number of retained events.
func (t *Tracer) Len() int { return len(t.events) }

// Dropped returns how many events were evicted from the ring.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Total returns how many events were ever emitted.
func (t *Tracer) Total() uint64 { return t.seq }

// CountByKind returns cumulative event counts (including evicted ones).
func (t *Tracer) CountByKind() map[Kind]uint64 {
	out := make(map[Kind]uint64, numKinds)
	for k, v := range t.counts {
		if v > 0 {
			out[Kind(k)] = v
		}
	}
	for k, v := range t.farCounts {
		out[k] = v
	}
	return out
}

// Events returns the retained events in emission order.
func (t *Tracer) Events() []Event {
	out := make([]Event, 0, len(t.events))
	for i := 0; i < len(t.events); i++ {
		out = append(out, t.events[(t.start+i)%len(t.events)])
	}
	return out
}

// Filter returns the retained events satisfying pred, in order.
func (t *Tracer) Filter(pred func(Event) bool) []Event {
	var out []Event
	for _, e := range t.Events() {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// QueryHistory returns every retained event of one query — its lifecycle
// as seen by the tracer.
func (t *Tracer) QueryHistory(id engine.QueryID) []Event {
	return t.Filter(func(e Event) bool { return e.Query == id })
}

// WriteTo renders up to max retained events (0 = all).
func (t *Tracer) WriteTo(w io.Writer, max int) {
	events := t.Events()
	if max > 0 && len(events) > max {
		events = events[len(events)-max:]
	}
	for _, e := range events {
		fmt.Fprintln(w, e)
	}
	if t.dropped > 0 {
		fmt.Fprintf(w, "(%d earlier events evicted)\n", t.dropped)
	}
}

// The detail* helpers format the per-event annotations through a reused
// scratch buffer instead of fmt: strconv.AppendFloat with the same verb
// precision produces byte-identical text, and only the final string
// conversion allocates. They render exactly "rt=%.3fs exec=%.3fs",
// "attempt=%d", and "waited=%.1fs".

//qlint:hotpath
func (t *Tracer) detailRT(rt, exec float64) string {
	b := append(t.detailBuf[:0], "rt="...)
	b = strconv.AppendFloat(b, rt, 'f', 3, 64)
	b = append(b, "s exec="...)
	b = strconv.AppendFloat(b, exec, 'f', 3, 64)
	b = append(b, 's')
	t.detailBuf = b
	return string(b)
}

//qlint:hotpath
func (t *Tracer) detailAttempt(attempt int) string {
	b := append(t.detailBuf[:0], "attempt="...)
	b = strconv.AppendInt(b, int64(attempt), 10)
	t.detailBuf = b
	return string(b)
}

//qlint:hotpath
func (t *Tracer) detailWaited(w float64) string {
	b := append(t.detailBuf[:0], "waited="...)
	b = strconv.AppendFloat(b, w, 'f', 1, 64)
	b = append(b, 's')
	t.detailBuf = b
	return string(b)
}

// AttachEngine records submit/start/done events from an engine. Start
// events fire when a query actually begins executing — immediately after
// submit for unintercepted queries, after release for held ones.
func AttachEngine(t *Tracer, eng *engine.Engine) {
	clock := eng.Clock()
	eng.OnSubmit(func(q *engine.Query) {
		t.Emit(Event{Time: clock.Now(), Kind: QuerySubmit, Class: q.Class,
			Query: q.ID, Client: q.Client, Value: q.Cost, Detail: q.Template})
	})
	eng.OnStart(func(q *engine.Query) {
		t.Emit(Event{Time: clock.Now(), Kind: QueryStart, Class: q.Class,
			Query: q.ID, Client: q.Client, Value: q.Cost, Detail: q.Template})
	})
	eng.OnDone(func(q *engine.Query) {
		if q.State != engine.StateDone {
			// Terminal failure (abort with retries exhausted, or no retry
			// handler): recorded by the abort listener, not as a
			// completion.
			return
		}
		t.Emit(Event{Time: clock.Now(), Kind: QueryDone, Class: q.Class,
			Query: q.ID, Client: q.Client, Value: q.Cost,
			Detail: t.detailRT(q.ResponseTime(), q.ExecutionTime())})
	})
	eng.OnAbort(func(q *engine.Query) {
		t.Emit(Event{Time: clock.Now(), Kind: QueryAborted, Class: q.Class,
			Query: q.ID, Client: q.Client, Value: q.Cost,
			Detail: t.detailAttempt(q.Attempt)})
	})
}

// AttachPatroller records intercept/release events, chaining any hooks
// already installed (the Query Scheduler's monitor uses the same ones).
func AttachPatroller(t *Tracer, pat *patroller.Patroller, clock *simclock.Clock) {
	prevArrival := pat.OnArrival
	pat.OnArrival = func(qi *patroller.QueryInfo) {
		if prevArrival != nil {
			prevArrival(qi)
		}
		t.Emit(Event{Time: clock.Now(), Kind: QueryIntercepted, Class: qi.Class,
			Query: qi.ID, Client: qi.Client, Value: qi.Cost, Detail: qi.Template})
	}
	prevRelease := pat.OnRelease
	pat.OnRelease = func(qi *patroller.QueryInfo) {
		if prevRelease != nil {
			prevRelease(qi)
		}
		t.Emit(Event{Time: clock.Now(), Kind: QueryReleased, Class: qi.Class,
			Query: qi.ID, Client: qi.Client, Value: qi.Cost,
			Detail: t.detailWaited(qi.WaitTime(clock.Now()))})
	}
	prevRetry := pat.OnRetry
	pat.OnRetry = func(qi *patroller.QueryInfo) {
		if prevRetry != nil {
			prevRetry(qi)
		}
		t.Emit(Event{Time: clock.Now(), Kind: QueryRetried, Class: qi.Class,
			Query: qi.ID, Client: qi.Client, Value: qi.Cost,
			Detail: t.detailAttempt(qi.Attempt)})
	}
}

// AttachRouter records one QueryRouted event per submitted query: the
// chosen backend's 1-based ID in Value, "backend=N" in Detail. The
// router fires its hook after the backend's engine assigned the query
// ID, so route events correlate with the rest of the lifecycle.
func AttachRouter(t *Tracer, r *router.Router, clock *simclock.Clock) {
	r.OnRoute(func(q *engine.Query, d router.Decision) {
		t.Emit(Event{Time: clock.Now(), Kind: QueryRouted, Class: q.Class,
			Query: q.ID, Client: q.Client, Value: float64(d.Backend),
			Detail: t.detailBackend(d.Backend)})
	})
	r.OnReroute(func(q *engine.Query, from, to int) {
		t.Emit(Event{Time: clock.Now(), Kind: QueryRerouted, Class: q.Class,
			Query: q.ID, Client: q.Client, Value: float64(to),
			Detail: t.detailReroute(from, to)})
	})
}

//qlint:hotpath
func (t *Tracer) detailBackend(b int) string {
	buf := append(t.detailBuf[:0], "backend="...)
	buf = strconv.AppendInt(buf, int64(b), 10)
	t.detailBuf = buf
	return string(buf)
}

// detailReroute renders a failover move — not hot-path: re-dispatches
// happen once per evacuated query per crash, not per submitted query.
func (t *Tracer) detailReroute(from, to int) string {
	buf := append(t.detailBuf[:0], "backend="...)
	buf = strconv.AppendInt(buf, int64(from), 10)
	buf = append(buf, "->"...)
	buf = strconv.AppendInt(buf, int64(to), 10)
	t.detailBuf = buf
	return string(buf)
}

// AttachScheduler records PlanChanged events from the Query Scheduler's
// control loop. An event is emitted only when the new plan's limits
// actually differ from the previous one, so plan-change markers mean a
// real reallocation, and the tracer's plan version counts distinct plans.
func AttachScheduler(t *Tracer, qs *core.QueryScheduler) {
	qs.OnPlan(func(rec core.PlanRecord) {
		d := formatLimits(rec.Limits)
		if d == t.lastPlan {
			return
		}
		t.lastPlan = d
		t.Emit(Event{Time: rec.Time, Kind: PlanChanged, Value: rec.Utility, Detail: d})
	})
}

// formatLimits renders a plan's cost limits in class-ID order.
func formatLimits(p solver.Plan) string {
	ids := make([]int, 0, len(p))
	for id := range p {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	var b strings.Builder
	b.WriteString("limits:")
	for _, id := range ids {
		fmt.Fprintf(&b, " %d=%.6g", id, p[engine.ClassID(id)])
	}
	return b.String()
}
