package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/simclock"
)

func TestPeriodAndPlanStamping(t *testing.T) {
	tr := New(16)
	tr.SetPeriodMapper(func(at simclock.Time) int { return int(at) / 100 })
	tr.Emit(Event{Time: 50, Kind: QuerySubmit, Query: 1})
	tr.Emit(Event{Time: 150, Kind: PlanChanged})
	tr.Emit(Event{Time: 250, Kind: QueryDone, Query: 1})
	ev := tr.Events()
	if ev[0].Period != 0 || ev[1].Period != 1 || ev[2].Period != 2 {
		t.Fatalf("periods = %d,%d,%d", ev[0].Period, ev[1].Period, ev[2].Period)
	}
	if ev[0].Plan != 0 {
		t.Fatalf("pre-change plan = %d, want 0", ev[0].Plan)
	}
	if ev[1].Plan != 1 || ev[2].Plan != 1 {
		t.Fatalf("post-change plans = %d,%d, want 1,1", ev[1].Plan, ev[2].Plan)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(2) // smaller than the event count: export must be lossless anyway
	meta := Meta{Experiment: "fig6", Seed: 7, PeriodSeconds: 100, Periods: 3,
		Classes: []ClassMeta{{ID: 1, Name: "Class 1", Kind: "olap", Goal: "velocity >= 0.40", Target: 0.4}}}
	if err := tr.StreamJSONL(&buf, meta); err != nil {
		t.Fatal(err)
	}
	tr.SetPeriodMapper(func(at simclock.Time) int { return int(at) / 100 })
	tr.Emit(Event{Time: 10, Kind: QuerySubmit, Class: 1, Query: 5, Client: 2, Value: 42.5, Detail: "Q9"})
	tr.Emit(Event{Time: 120, Kind: PlanChanged, Value: 1.5, Detail: "limits: 1=300"})
	tr.Emit(Event{Time: 130, Kind: QueryStart, Class: 1, Query: 5, Client: 2, Value: 42.5})
	tr.Emit(Event{Time: 220, Kind: QueryDone, Class: 1, Query: 5, Client: 2, Value: 42.5})
	if err := tr.SinkErr(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("ring retained %d, want 2", tr.Len())
	}

	f, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if f.Meta.Version != FormatVersion || f.Meta.Experiment != "fig6" || f.Meta.Seed != 7 {
		t.Fatalf("meta = %+v", f.Meta)
	}
	if c := f.ClassByID(1); c == nil || c.Name != "Class 1" || c.Target != 0.4 {
		t.Fatalf("class meta = %+v", c)
	}
	if len(f.Events) != 4 {
		t.Fatalf("%d events exported, want 4 (lossless)", len(f.Events))
	}
	e := f.Events[0]
	if e.Seq != 1 || e.Time != 10 || e.Kind != QuerySubmit || e.Class != 1 ||
		e.Query != 5 || e.Client != 2 || e.Period != 0 || e.Plan != 0 ||
		e.Value != 42.5 || e.Detail != "Q9" {
		t.Fatalf("event[0] = %+v", e)
	}
	if f.Events[2].Plan != 1 || f.Events[2].Period != 1 {
		t.Fatalf("event[2] = %+v", f.Events[2])
	}
}

func TestJSONLExportDeterministic(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		tr := New(8)
		if err := tr.StreamJSONL(&buf, Meta{Experiment: "x", Seed: 1}); err != nil {
			t.Fatal(err)
		}
		tr.Emit(Event{Time: 1.0 / 3.0, Kind: QuerySubmit, Query: 1, Value: 0.1 + 0.2})
		tr.Emit(Event{Time: 2, Kind: QueryDone, Query: 1})
		tr.Flush()
		return buf.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("export not byte-stable:\n%q\n%q", a, b)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"no meta":      `{"type":"event","seq":1}`,
		"bad json":     "{not json}",
		"unknown type": `{"type":"wat"}`,
		"bad kind":     "{\"type\":\"meta\",\"v\":1}\n{\"type\":\"event\",\"kind\":\"zap\"}",
		"empty":        "",
	}
	for name, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestBuildSpans(t *testing.T) {
	events := []Event{
		{Kind: QuerySubmit, Query: 2, Class: 1, Client: 4, Time: 0, Value: 50, Detail: "Q2", Period: 0, Plan: 0},
		{Kind: QuerySubmit, Query: 1, Class: 2, Client: 3, Time: 1, Value: 9, Detail: "Q1"},
		{Kind: QueryIntercepted, Query: 2, Class: 1, Time: 0, Value: 50},
		{Kind: QueryStart, Query: 1, Class: 2, Time: 1},
		{Kind: PlanChanged, Time: 5, Value: 2},
		{Kind: QueryReleased, Query: 2, Class: 1, Time: 10, Value: 50},
		{Kind: QueryStart, Query: 2, Class: 1, Time: 10},
		{Kind: QueryDone, Query: 2, Class: 1, Time: 30, Period: 1, Plan: 1},
	}
	spans := BuildSpans(events)
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2", len(spans))
	}
	if spans[0].Query != 1 || spans[1].Query != 2 {
		t.Fatalf("spans not ID-ordered: %d, %d", spans[0].Query, spans[1].Query)
	}
	managed := spans[1]
	if !managed.Managed() || !managed.Started() || !managed.Completed() {
		t.Fatalf("span predicates wrong: %+v", managed)
	}
	if managed.AdmissionWait(0) != 10 || managed.ExecTime(0) != 20 {
		t.Fatalf("wait=%v exec=%v, want 10, 20", managed.AdmissionWait(0), managed.ExecTime(0))
	}
	if managed.DonePeriod != 1 || managed.DonePlan != 1 || managed.Template != "Q2" {
		t.Fatalf("span = %+v", managed)
	}
	open := spans[0]
	if open.Managed() || open.Completed() || !open.Started() {
		t.Fatalf("unmanaged span predicates wrong: %+v", open)
	}
	if open.AdmissionWait(100) != 0 || open.ExecTime(100) != 99 {
		t.Fatalf("open wait=%v exec=%v", open.AdmissionWait(100), open.ExecTime(100))
	}
	// A query submitted but never started accrues wait against the horizon.
	held := BuildSpans([]Event{{Kind: QuerySubmit, Query: 9, Time: 40}})[0]
	if held.Started() || held.AdmissionWait(100) != 60 || held.ExecTime(100) != 0 {
		t.Fatalf("held span = %+v", held)
	}
}
