// File sinks for the JSONL export: optional gzip compression (selected
// by a .gz path suffix) and optional size-based rotation. The tracer
// writes whole lines only, so rotation always lands on a line boundary;
// each rotated segment re-starts with the run's meta line, keeping every
// segment independently parseable by ReadJSONL/qtrace.
package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// Sink is a JSONL file sink. It implements io.Writer for the tracer and
// must be closed after the run to flush buffers (and the gzip trailer).
type Sink struct {
	path        string
	gzipped     bool
	rotateBytes int64

	f  *os.File
	gz *gzip.Writer
	bw *bufio.Writer

	written   int64 // bytes written to the current segment (uncompressed)
	rotations int
	meta      []byte // first line written; replayed at each rotation
	closed    bool
}

// OpenSink creates (truncating) a JSONL sink at path. A path ending in
// ".gz" writes gzip; rotateBytes > 0 rotates the file once a segment
// exceeds that many (uncompressed) bytes: the current file moves to
// path.1, path.2, ... and a fresh segment opens at path.
func OpenSink(path string, rotateBytes int64) (*Sink, error) {
	if rotateBytes < 0 {
		return nil, fmt.Errorf("trace: negative rotation threshold %d", rotateBytes)
	}
	s := &Sink{path: path, gzipped: strings.HasSuffix(path, ".gz"), rotateBytes: rotateBytes}
	if err := s.open(); err != nil {
		return nil, err
	}
	return s, nil
}

// Rotating reports whether the sink rotates segments.
func (s *Sink) Rotating() bool { return s.rotateBytes > 0 }

// Gzipped reports whether the sink compresses its output.
func (s *Sink) Gzipped() bool { return s.gzipped }

// Rotations returns how many times the sink has rotated.
func (s *Sink) Rotations() int { return s.rotations }

func (s *Sink) open() error {
	f, err := os.Create(s.path)
	if err != nil {
		return fmt.Errorf("trace: open sink: %w", err)
	}
	s.f = f
	var w io.Writer = f
	if s.gzipped {
		s.gz = gzip.NewWriter(f)
		w = s.gz
	}
	s.bw = bufio.NewWriterSize(w, 1<<16)
	s.written = 0
	return nil
}

// Write appends one (complete) JSONL line, rotating first when the
// segment is full. The first line ever written is remembered as the meta
// line and replayed at the head of every rotated segment.
func (s *Sink) Write(p []byte) (int, error) {
	if s.closed {
		return 0, fmt.Errorf("trace: write to closed sink")
	}
	if s.meta == nil {
		s.meta = append([]byte(nil), p...)
	} else if s.rotateBytes > 0 && s.written > 0 && s.written+int64(len(p)) > s.rotateBytes {
		if err := s.rotate(); err != nil {
			return 0, err
		}
	}
	n, err := s.bw.Write(p)
	s.written += int64(n)
	return n, err
}

// rotate closes the current segment, shifts it to the next numbered
// suffix, and opens a fresh segment seeded with the meta line.
func (s *Sink) rotate() error {
	if err := s.closeCurrent(); err != nil {
		return err
	}
	s.rotations++
	if err := os.Rename(s.path, fmt.Sprintf("%s.%d", s.path, s.rotations)); err != nil {
		return fmt.Errorf("trace: rotate sink: %w", err)
	}
	if err := s.open(); err != nil {
		return err
	}
	if len(s.meta) > 0 {
		n, err := s.bw.Write(s.meta)
		s.written += int64(n)
		if err != nil {
			return err
		}
	}
	return nil
}

func (s *Sink) closeCurrent() error {
	var first error
	if err := s.bw.Flush(); err != nil {
		first = err
	}
	if s.gz != nil {
		if err := s.gz.Close(); err != nil && first == nil {
			first = err
		}
		s.gz = nil
	}
	if err := s.f.Close(); err != nil && first == nil {
		first = err
	}
	s.f = nil
	return first
}

// Close flushes and closes the sink. Safe to call once.
func (s *Sink) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.closeCurrent()
}
