package trace

import (
	"bytes"
	"compress/gzip"
	"testing"
)

// FuzzReadJSONL asserts the trace parser's contract on arbitrary input:
// an error or a well-formed TraceFile, never a panic. Corrupt gzip
// streams are covered too (ReadJSONL sniffs the magic bytes).
func FuzzReadJSONL(f *testing.F) {
	meta := `{"type":"meta","v":1,"experiment":"fuzz","seed":1,"period_seconds":60,"periods":2,"classes":[{"id":1,"name":"olap","kind":"OLAP","goal":"velocity >= 0.4","target":0.4}]}`
	event := `{"type":"event","seq":1,"t":0.5,"kind":"submit","class":1,"query":1,"client":2,"period":0,"plan":0,"value":100}`
	f.Add([]byte(meta + "\n"))
	f.Add([]byte(meta + "\n" + event + "\n"))
	f.Add([]byte(event + "\n"))                                 // event before meta
	f.Add([]byte(meta + "\n" + meta + "\n"))                    // duplicate meta
	f.Add([]byte(`{"type":"mystery"}` + "\n"))                  // unknown line type
	f.Add([]byte(`{"type":"event","kind":"nonsense"}` + "\n"))  // unknown event kind
	f.Add([]byte("{\"type\":\"meta\""))                         // truncated JSON
	f.Add([]byte("\x1f\x8b\x08\x00garbage-after-gzip-magic\n")) // torn gzip stream
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write([]byte(meta + "\n" + event + "\n"))
	zw.Close()
	f.Add(gz.Bytes()) // valid compressed trace

	f.Fuzz(func(t *testing.T, data []byte) {
		tf, err := ReadJSONL(bytes.NewReader(data))
		if err == nil && tf == nil {
			t.Fatal("nil trace with nil error")
		}
	})
}
