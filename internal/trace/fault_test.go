package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/patroller"
	"repro/internal/simclock"
)

func TestStreamJSONLSecondAttachErrors(t *testing.T) {
	var first, second bytes.Buffer
	tr := New(8)
	if err := tr.StreamJSONL(&first, Meta{Experiment: "a"}); err != nil {
		t.Fatal(err)
	}
	err := tr.StreamJSONL(&second, Meta{Experiment: "b"})
	if err == nil {
		t.Fatal("second sink accepted")
	}
	if !strings.Contains(err.Error(), "already attached") {
		t.Fatalf("error = %v", err)
	}
	if second.Len() != 0 {
		t.Fatalf("rejected sink received %d bytes", second.Len())
	}
	// The first sink keeps streaming untouched.
	tr.Emit(Event{Time: 1, Kind: QuerySubmit, Query: 1})
	if tr.SinkErr() != nil {
		t.Fatal(tr.SinkErr())
	}
	f, err := ReadJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if f.Meta.Experiment != "a" || len(f.Events) != 1 {
		t.Fatalf("first sink corrupted: %+v", f)
	}
}

func TestAbortAndRetryEventsRoundTripJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := New(8)
	if err := tr.StreamJSONL(&buf, Meta{Experiment: "faults"}); err != nil {
		t.Fatal(err)
	}
	tr.Emit(Event{Time: 3, Kind: QueryAborted, Class: 1, Query: 9, Detail: "attempt=0"})
	tr.Emit(Event{Time: 5, Kind: QueryRetried, Class: 1, Query: 10, Detail: "attempt=1"})
	tr.Flush()
	f, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Events) != 2 {
		t.Fatalf("%d events", len(f.Events))
	}
	if f.Events[0].Kind != QueryAborted || f.Events[0].Detail != "attempt=0" {
		t.Fatalf("event[0] = %+v", f.Events[0])
	}
	if f.Events[1].Kind != QueryRetried || f.Events[1].Query != 10 {
		t.Fatalf("event[1] = %+v", f.Events[1])
	}
}

func TestAttachedEngineAndPatrollerRecordAbortRetry(t *testing.T) {
	clock := simclock.New()
	eng := engine.New(engine.Config{CPUCapacity: 10, IOCapacity: 10}, clock)
	pat := patroller.New(eng, 1)
	pat.SetPolicy(patroller.ReleaseAll{})
	pat.SetRetryPolicy(&patroller.RetryPolicy{MaxAttempts: 2, Backoff: 1})
	tr := New(64)
	AttachEngine(tr, eng)
	AttachPatroller(tr, pat, clock)

	q := &engine.Query{Class: 1, Cost: 10, Demand: engine.Demand{Work: 5, CPURate: 1}}
	eng.Submit(q)
	clock.After(2, func() { eng.Abort(q) })
	clock.Run()

	kinds := tr.CountByKind()
	if kinds[QueryAborted] != 1 || kinds[QueryRetried] != 1 {
		t.Fatalf("counts = %v", kinds)
	}
	// The failed attempt must not masquerade as a completion; only the
	// retry completes.
	if kinds[QueryDone] != 1 {
		t.Fatalf("done count = %d, want 1 (retry only)", kinds[QueryDone])
	}
	var abortAt, retryAt simclock.Time = -1, -1
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case QueryAborted:
			abortAt = ev.Time
		case QueryRetried:
			retryAt = ev.Time
		}
	}
	// The retry event marks the retry decision, made at the abort
	// instant; the backoff delays only the resubmission.
	if abortAt != 2 || retryAt != 2 {
		t.Fatalf("abort at %v, retry at %v, want both at 2", abortAt, retryAt)
	}
}
