// Checkpoint state for the tracer: counters, the retained ring, the plan
// version and dedup memory, and the sink byte offset the resumed run
// truncates its trace file to.
package trace

import "sort"

// KindCount is one cumulative event-kind counter.
type KindCount struct {
	Kind Kind
	N    uint64
}

// CheckpointState is the tracer's serializable state.
type CheckpointState struct {
	Seq       uint64
	Dropped   uint64
	Plan      int
	LastPlan  string
	SinkBytes int64
	Counts    []KindCount // sorted by kind
	Events    []Event     // retained ring, in emission order
}

// CheckpointState captures the tracer. Batched events are flushed first
// so the recorded sink offset covers everything emitted so far.
func (t *Tracer) CheckpointState() CheckpointState {
	t.Flush()
	st := CheckpointState{
		Seq:       t.seq,
		Dropped:   t.dropped,
		Plan:      t.plan,
		LastPlan:  t.lastPlan,
		SinkBytes: t.sinkBytes,
		Events:    t.Events(),
	}
	for k, n := range t.counts {
		if n > 0 {
			st.Counts = append(st.Counts, KindCount{Kind: Kind(k), N: n})
		}
	}
	for k, n := range t.farCounts {
		st.Counts = append(st.Counts, KindCount{Kind: k, N: n})
	}
	sort.Slice(st.Counts, func(i, j int) bool { return st.Counts[i].Kind < st.Counts[j].Kind })
	return st
}

// RestoreCheckpoint overwrites a freshly constructed tracer (same
// capacity as the checkpointed one). The sink and period mapper are not
// restored — the caller re-attaches them (see ResumeJSONL).
func (t *Tracer) RestoreCheckpoint(st CheckpointState) {
	if t.seq != 0 {
		panic("trace: checkpoint restore onto a used tracer")
	}
	t.seq = st.Seq
	t.dropped = st.Dropped
	t.plan = st.Plan
	t.lastPlan = st.LastPlan
	t.sinkBytes = st.SinkBytes
	for _, kc := range st.Counts {
		if k := int(kc.Kind); k >= 0 && k < numKinds {
			t.counts[k] = kc.N
		} else {
			if t.farCounts == nil {
				t.farCounts = make(map[Kind]uint64)
			}
			t.farCounts[kc.Kind] = kc.N
		}
	}
	t.events = append(t.events[:0], st.Events...)
	t.start = 0
}
