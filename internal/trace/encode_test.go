package trace

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/simclock"
)

// marshalEventLine is the seed path: encoding/json over the on-disk
// struct, one line per event. appendEventLine must match it byte for
// byte — the JSONL format is pinned by golden traces, so the scratch
// encoder is only correct if it is indistinguishable from this.
func marshalEventLine(t *testing.T, e Event) []byte {
	t.Helper()
	line, err := json.Marshal(jsonEvent{
		Type:   "event",
		Seq:    e.Seq,
		T:      float64(e.Time),
		Kind:   e.Kind.String(),
		Class:  int(e.Class),
		Query:  uint64(e.Query),
		Client: int(e.Client),
		Period: e.Period,
		Plan:   e.Plan,
		Value:  e.Value,
		Detail: e.Detail,
	})
	if err != nil {
		t.Fatalf("json.Marshal: %v", err)
	}
	return append(line, '\n')
}

func checkEventLine(t *testing.T, e Event) {
	t.Helper()
	got := appendEventLine(nil, &e)
	want := marshalEventLine(t, e)
	if string(got) != string(want) {
		t.Errorf("event %+v:\n got %q\nwant %q", e, got, want)
	}
}

// TestEventLineMatchesEncodingJSON drives the hand-rolled encoder over
// adversarial values: float formatting edge cases around encoding/json's
// 'f'/'e' switchover, every escape class in strings (quotes, control
// bytes, HTML characters, invalid UTF-8, U+2028/U+2029), and a large
// pseudo-random sweep.
func TestEventLineMatchesEncodingJSON(t *testing.T) {
	floats := []float64{
		0, 1, -1, 0.5, -0.25, 1e-6, 9.999999e-7, 1e-7, -1e-7, 1e21,
		9.99999999e20, -1e21, 1e-300, 1e300, 123456.789, 0.1, 1.0 / 3.0,
		600, 86400, 2.5e-9, 7.733e-10, math.MaxFloat64, math.SmallestNonzeroFloat64,
	}
	details := []string{
		"", "Q1.5", "rt=0.123s exec=0.045s", "limits: 1=1.2e+04 2=500",
		`quote " backslash \ done`, "tab\tnewline\ncarriage\r",
		"ctrl\x01\x1f", "html <b> & </b>", "utf8 ünïcode ✓",
		"bad utf8 \xff\xfe", "line sep \u2028 and \u2029",
		strings.Repeat("long ", 100) + "<end>",
	}
	for _, f := range floats {
		checkEventLine(t, Event{Seq: 1, Time: simclock.Time(f), Kind: QueryDone, Value: -f})
	}
	for _, d := range details {
		checkEventLine(t, Event{Seq: 2, Time: 1.25, Kind: QuerySubmit, Detail: d})
	}
	src := rng.New(42)
	runes := []rune("ab\"\\<>&\n\r\t\x01é✓\u2028\u2029\ufffd")
	for i := 0; i < 2000; i++ {
		var sb strings.Builder
		for n := src.Intn(12); n > 0; n-- {
			sb.WriteRune(runes[src.Intn(len(runes))])
		}
		// Mix magnitudes so both float formats and the exponent-trim
		// path are exercised.
		v := src.Range(-1, 1) * math.Pow(10, float64(src.Intn(50)-25))
		e := Event{
			Seq:    src.Uint64(),
			Time:   simclock.Time(src.Range(0, 1e9)),
			Kind:   Kind(src.Intn(int(QueryRetried) + 1)),
			Class:  engine.ClassID(src.Intn(7) - 2),
			Query:  engine.QueryID(src.Uint64()),
			Client: engine.ClientID(src.Intn(1 << 20)),
			Period: src.Intn(20),
			Plan:   src.Intn(100),
			Value:  v,
			Detail: sb.String(),
		}
		checkEventLine(t, e)
	}
}
