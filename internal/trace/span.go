// Lifecycle spans and lossless JSONL export. The ring buffer in trace.go
// bounds memory for interactive use; the JSONL sink streams every event to
// a file so cmd/qtrace can reconstruct full query lifecycles after the
// run. The format is line-oriented JSON with a "type" discriminator: one
// meta line first, then one line per event, in emission order. Field
// order is fixed by the struct definitions and floats use Go's shortest
// round-trip encoding, so identical runs export byte-identical files.
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"unicode/utf8"

	"repro/internal/engine"
	"repro/internal/simclock"
)

// FormatVersion identifies the JSONL trace format.
const FormatVersion = 1

// ClassMeta describes one service class in the trace header.
type ClassMeta struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	Kind string `json:"kind"`
	Goal string `json:"goal"`
	// Target is the numeric goal value (velocity floor or RT ceiling).
	Target float64 `json:"target"`
}

// BackendMeta describes one fleet backend in the trace header.
type BackendMeta struct {
	ID   int     `json:"id"` // 1-based, matches route events' Value
	Name string  `json:"name"`
	CPU  float64 `json:"cpu"`
	IO   float64 `json:"io"`
}

// Meta is the trace header: enough run context for qtrace to interpret
// event times as schedule periods and class IDs as named classes.
type Meta struct {
	Version       int         `json:"v"`
	Experiment    string      `json:"experiment"`
	Seed          int64       `json:"seed"`
	PeriodSeconds float64     `json:"period_seconds"`
	Periods       int         `json:"periods"`
	Classes       []ClassMeta `json:"classes"`
	// Backends is the fleet roster; empty (and omitted from the header
	// line) for single-backend runs, so legacy traces are byte-identical.
	Backends []BackendMeta `json:"backends,omitempty"`
}

// jsonMeta is the on-disk meta line.
type jsonMeta struct {
	Type string `json:"type"`
	Meta
}

// jsonEvent is the on-disk event line.
type jsonEvent struct {
	Type   string  `json:"type"`
	Seq    uint64  `json:"seq"`
	T      float64 `json:"t"`
	Kind   string  `json:"kind"`
	Class  int     `json:"class"`
	Query  uint64  `json:"query"`
	Client int     `json:"client"`
	Period int     `json:"period"`
	Plan   int     `json:"plan"`
	Value  float64 `json:"value"`
	Detail string  `json:"detail,omitempty"`
}

// StreamJSONL attaches a lossless JSONL sink: the meta line is written
// immediately and every subsequently emitted event is appended as one
// line, regardless of ring eviction. Only one sink may be attached. The
// caller owns w (and any buffering/closing); write errors after this call
// are latched and reported by SinkErr.
func (t *Tracer) StreamJSONL(w io.Writer, meta Meta) error {
	if t.sink != nil {
		return fmt.Errorf("trace: JSONL sink already attached")
	}
	meta.Version = FormatVersion
	line, err := json.Marshal(jsonMeta{Type: "meta", Meta: meta})
	if err != nil {
		return fmt.Errorf("trace: encode meta: %w", err)
	}
	n, err := w.Write(append(line, '\n'))
	t.sinkBytes += int64(n)
	if err != nil {
		return fmt.Errorf("trace: write meta: %w", err)
	}
	t.sink = w
	return nil
}

// ResumeJSONL re-attaches a JSONL sink after a checkpoint restore,
// without writing a meta line: the resumed file already carries the
// original header and every event up to the checkpoint (the caller
// truncates it to the checkpointed SinkBytes offset first).
func (t *Tracer) ResumeJSONL(w io.Writer) error {
	if t.sink != nil {
		return fmt.Errorf("trace: JSONL sink already attached")
	}
	t.sink = w
	return nil
}

// SinkBytes returns how many bytes the tracer has written to its sink —
// the truncation offset a resumed run rewinds the trace file to. Reading
// it flushes any batched events first, so the offset is always exact.
func (t *Tracer) SinkBytes() int64 {
	t.Flush()
	return t.sinkBytes
}

// SinkErr returns the first error the JSONL sink hit, or nil. Emit never
// fails loudly on the hot path; callers check this once after the run
// (the check flushes any still-batched events).
func (t *Tracer) SinkErr() error {
	t.Flush()
	return t.sinkErr
}

// appendEventLine encodes one event line into buf — a hand-rolled
// encoder producing byte-for-byte what encoding/json produced for the
// equivalent jsonEvent (field order, HTML escaping, float formatting,
// detail omitted when empty), without the per-event reflection and
// allocations. TestEventLineMatchesEncodingJSON pins the equivalence.
func appendEventLine(buf []byte, e *Event) []byte {
	buf = append(buf, `{"type":"event","seq":`...)
	buf = strconv.AppendUint(buf, e.Seq, 10)
	buf = append(buf, `,"t":`...)
	buf = appendJSONFloat(buf, float64(e.Time))
	buf = append(buf, `,"kind":`...)
	buf = appendJSONString(buf, e.Kind.String())
	buf = append(buf, `,"class":`...)
	buf = strconv.AppendInt(buf, int64(e.Class), 10)
	buf = append(buf, `,"query":`...)
	buf = strconv.AppendUint(buf, uint64(e.Query), 10)
	buf = append(buf, `,"client":`...)
	buf = strconv.AppendInt(buf, int64(e.Client), 10)
	buf = append(buf, `,"period":`...)
	buf = strconv.AppendInt(buf, int64(e.Period), 10)
	buf = append(buf, `,"plan":`...)
	buf = strconv.AppendInt(buf, int64(e.Plan), 10)
	buf = append(buf, `,"value":`...)
	buf = appendJSONFloat(buf, e.Value)
	if e.Detail != "" {
		buf = append(buf, `,"detail":`...)
		buf = appendJSONString(buf, e.Detail)
	}
	buf = append(buf, '}', '\n')
	return buf
}

// appendJSONFloat mirrors encoding/json's float64 encoder: shortest
// round-trip 'f' form, switching to 'e' form outside [1e-6, 1e21) with
// the exponent's leading zero trimmed. Event times and values are always
// finite; a non-finite value here is a bug, and json.Marshal would have
// refused it too.
func appendJSONFloat(buf []byte, f float64) []byte {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		panic(fmt.Sprintf("trace: non-finite float %v in event", f))
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	buf = strconv.AppendFloat(buf, f, format, -1, 64)
	if format == 'e' {
		if n := len(buf); n >= 4 && buf[n-4] == 'e' && buf[n-3] == '-' && buf[n-2] == '0' {
			buf[n-2] = buf[n-1]
			buf = buf[:n-1]
		}
	}
	return buf
}

const jsonHex = "0123456789abcdef"

// appendJSONString mirrors encoding/json's string encoder with HTML
// escaping on (the package default): quotes, backslashes and control
// bytes escaped; '<', '>', '&' written as </>/&; invalid
// UTF-8 replaced with the � escape; U+2028/U+2029 escaped.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			buf = append(buf, s[start:i]...)
			switch c {
			case '\\', '"':
				buf = append(buf, '\\', c)
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			default:
				buf = append(buf, '\\', 'u', '0', '0', jsonHex[c>>4], jsonHex[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			buf = append(buf, s[start:i]...)
			buf = append(buf, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			buf = append(buf, s[start:i]...)
			buf = append(buf, `\u202`...)
			buf = append(buf, jsonHex[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	buf = append(buf, s[start:]...)
	buf = append(buf, '"')
	return buf
}

// kindFromString inverts Kind.String for trace file parsing.
func kindFromString(s string) (Kind, error) {
	for k := QuerySubmit; k <= QueryRerouted; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", s)
}

// TraceFile is a parsed JSONL export.
type TraceFile struct {
	Meta   Meta
	Events []Event
}

// ClassByID returns the class metadata for id, or nil.
func (m Meta) ClassByID(id int) *ClassMeta {
	for i := range m.Classes {
		if m.Classes[i].ID == id {
			return &m.Classes[i]
		}
	}
	return nil
}

// ClassByID returns the class metadata for id, or nil.
func (f *TraceFile) ClassByID(id int) *ClassMeta { return f.Meta.ClassByID(id) }

// ReadJSONL parses a trace exported by StreamJSONL. Gzip-compressed
// exports (written through a .jsonl.gz sink) are detected by their magic
// bytes and decompressed transparently. The meta line must come first;
// unknown line types are rejected (the format is versioned, not
// open-ended). Corrupt or truncated input yields an error, never a
// panic.
func ReadJSONL(r io.Reader) (*TraceFile, error) {
	var f TraceFile
	err := ScanJSONL(r,
		func(m Meta) error { f.Meta = m; return nil },
		func(e Event) error { f.Events = append(f.Events, e); return nil })
	if err != nil {
		return nil, err
	}
	return &f, nil
}

// ScanJSONL streams a trace exported by StreamJSONL without retaining
// it: the meta line (which must come first) is passed to onMeta, then
// every event is passed to onEvent in file order. Format handling
// matches ReadJSONL — gzip is detected and decompressed, corrupt input
// yields an error — but memory stays constant no matter how large the
// trace is. A callback error aborts the scan and is returned verbatim.
func ScanJSONL(r io.Reader, onMeta func(Meta) error, onEvent func(Event) error) error {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return fmt.Errorf("trace: gzip: %w", err)
		}
		defer zr.Close()
		return scanJSONL(zr, onMeta, onEvent)
	}
	return scanJSONL(br, onMeta, onEvent)
}

func scanJSONL(r io.Reader, onMeta func(Meta) error, onEvent func(Event) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	sawMeta := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var disc struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &disc); err != nil {
			return fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		switch disc.Type {
		case "meta":
			if sawMeta {
				return fmt.Errorf("trace: line %d: duplicate meta", lineNo)
			}
			var jm jsonMeta
			if err := json.Unmarshal(line, &jm); err != nil {
				return fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			sawMeta = true
			if err := onMeta(jm.Meta); err != nil {
				return err
			}
		case "event":
			if !sawMeta {
				return fmt.Errorf("trace: line %d: event before meta", lineNo)
			}
			var je jsonEvent
			if err := json.Unmarshal(line, &je); err != nil {
				return fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			kind, err := kindFromString(je.Kind)
			if err != nil {
				return fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			err = onEvent(Event{
				Seq:    je.Seq,
				Time:   simclock.Time(je.T),
				Kind:   kind,
				Class:  engine.ClassID(je.Class),
				Query:  engine.QueryID(je.Query),
				Client: engine.ClientID(je.Client),
				Period: je.Period,
				Plan:   je.Plan,
				Value:  je.Value,
				Detail: je.Detail,
			})
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("trace: line %d: unknown type %q", lineNo, disc.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("trace: read: %w", err)
	}
	if !sawMeta {
		return fmt.Errorf("trace: no meta line (not a trace export?)")
	}
	return nil
}

// noTime marks a lifecycle edge a span never reached.
const noTime = simclock.Time(-1)

// Span is one query's reconstructed lifecycle: the times of each edge it
// passed, with the class/cost identity and the plan version in force at
// the edges. Edges the query never reached are -1 (check with the
// predicates below).
type Span struct {
	Query    engine.QueryID
	Class    engine.ClassID
	Client   engine.ClientID
	Cost     float64
	Template string

	Submit    simclock.Time
	Intercept simclock.Time
	Release   simclock.Time
	Start     simclock.Time
	Done      simclock.Time

	SubmitPeriod int
	DonePeriod   int
	SubmitPlan   int
	DonePlan     int
}

// Managed reports whether the patroller intercepted the query.
func (s *Span) Managed() bool { return s.Intercept >= 0 }

// Started reports whether the query began executing.
func (s *Span) Started() bool { return s.Start >= 0 }

// Completed reports whether the query finished inside the trace.
func (s *Span) Completed() bool { return s.Done >= 0 }

// AdmissionWait is the time from submit until execution start — the
// dispatcher's hold time (0 for unintercepted queries, which start
// immediately). For a query still held at end-of-trace pass the trace
// horizon as now; for completed spans now is ignored.
func (s *Span) AdmissionWait(now simclock.Time) float64 {
	switch {
	case s.Started():
		return float64(s.Start - s.Submit)
	default:
		return float64(now - s.Submit)
	}
}

// ExecTime is the execution duration, or the elapsed running time against
// now for spans still executing at end-of-trace.
func (s *Span) ExecTime(now simclock.Time) float64 {
	if !s.Started() {
		return 0
	}
	if s.Completed() {
		return float64(s.Done - s.Start)
	}
	return float64(now - s.Start)
}

// BuildSpans folds lifecycle events into one span per query, ordered by
// query ID. Non-query events (plan changes, workload shifts) are skipped.
func BuildSpans(events []Event) []*Span {
	byID := make(map[engine.QueryID]*Span)
	var order []engine.QueryID
	get := func(e Event) *Span {
		s, ok := byID[e.Query]
		if !ok {
			s = &Span{Query: e.Query, Class: e.Class, Client: e.Client,
				Cost: e.Value, Submit: noTime, Intercept: noTime,
				Release: noTime, Start: noTime, Done: noTime}
			byID[e.Query] = s
			order = append(order, e.Query)
		}
		return s
	}
	for _, e := range events {
		switch e.Kind {
		case QuerySubmit:
			s := get(e)
			s.Submit = e.Time
			s.Template = e.Detail
			s.SubmitPeriod = e.Period
			s.SubmitPlan = e.Plan
		case QueryIntercepted:
			get(e).Intercept = e.Time
		case QueryReleased:
			get(e).Release = e.Time
		case QueryStart:
			get(e).Start = e.Time
		case QueryDone:
			s := get(e)
			s.Done = e.Time
			s.DonePeriod = e.Period
			s.DonePlan = e.Plan
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]*Span, 0, len(order))
	for _, id := range order {
		out = append(out, byID[id])
	}
	return out
}
