// Lifecycle spans and lossless JSONL export. The ring buffer in trace.go
// bounds memory for interactive use; the JSONL sink streams every event to
// a file so cmd/qtrace can reconstruct full query lifecycles after the
// run. The format is line-oriented JSON with a "type" discriminator: one
// meta line first, then one line per event, in emission order. Field
// order is fixed by the struct definitions and floats use Go's shortest
// round-trip encoding, so identical runs export byte-identical files.
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/engine"
	"repro/internal/simclock"
)

// FormatVersion identifies the JSONL trace format.
const FormatVersion = 1

// ClassMeta describes one service class in the trace header.
type ClassMeta struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	Kind string `json:"kind"`
	Goal string `json:"goal"`
	// Target is the numeric goal value (velocity floor or RT ceiling).
	Target float64 `json:"target"`
}

// Meta is the trace header: enough run context for qtrace to interpret
// event times as schedule periods and class IDs as named classes.
type Meta struct {
	Version       int         `json:"v"`
	Experiment    string      `json:"experiment"`
	Seed          int64       `json:"seed"`
	PeriodSeconds float64     `json:"period_seconds"`
	Periods       int         `json:"periods"`
	Classes       []ClassMeta `json:"classes"`
}

// jsonMeta is the on-disk meta line.
type jsonMeta struct {
	Type string `json:"type"`
	Meta
}

// jsonEvent is the on-disk event line.
type jsonEvent struct {
	Type   string  `json:"type"`
	Seq    uint64  `json:"seq"`
	T      float64 `json:"t"`
	Kind   string  `json:"kind"`
	Class  int     `json:"class"`
	Query  uint64  `json:"query"`
	Client int     `json:"client"`
	Period int     `json:"period"`
	Plan   int     `json:"plan"`
	Value  float64 `json:"value"`
	Detail string  `json:"detail,omitempty"`
}

// StreamJSONL attaches a lossless JSONL sink: the meta line is written
// immediately and every subsequently emitted event is appended as one
// line, regardless of ring eviction. Only one sink may be attached. The
// caller owns w (and any buffering/closing); write errors after this call
// are latched and reported by SinkErr.
func (t *Tracer) StreamJSONL(w io.Writer, meta Meta) error {
	if t.sink != nil {
		return fmt.Errorf("trace: JSONL sink already attached")
	}
	meta.Version = FormatVersion
	line, err := json.Marshal(jsonMeta{Type: "meta", Meta: meta})
	if err != nil {
		return fmt.Errorf("trace: encode meta: %w", err)
	}
	n, err := w.Write(append(line, '\n'))
	t.sinkBytes += int64(n)
	if err != nil {
		return fmt.Errorf("trace: write meta: %w", err)
	}
	t.sink = w
	return nil
}

// ResumeJSONL re-attaches a JSONL sink after a checkpoint restore,
// without writing a meta line: the resumed file already carries the
// original header and every event up to the checkpoint (the caller
// truncates it to the checkpointed SinkBytes offset first).
func (t *Tracer) ResumeJSONL(w io.Writer) error {
	if t.sink != nil {
		return fmt.Errorf("trace: JSONL sink already attached")
	}
	t.sink = w
	return nil
}

// SinkBytes returns how many bytes the tracer has written to its sink —
// the truncation offset a resumed run rewinds the trace file to.
func (t *Tracer) SinkBytes() int64 { return t.sinkBytes }

// SinkErr returns the first error the JSONL sink hit, or nil. Emit never
// fails loudly on the hot path; callers check this once after the run.
func (t *Tracer) SinkErr() error { return t.sinkErr }

// writeEventLine appends one event line to the sink, returning the bytes
// written.
func writeEventLine(w io.Writer, e Event) (int, error) {
	line, err := json.Marshal(jsonEvent{
		Type:   "event",
		Seq:    e.Seq,
		T:      float64(e.Time),
		Kind:   e.Kind.String(),
		Class:  int(e.Class),
		Query:  uint64(e.Query),
		Client: int(e.Client),
		Period: e.Period,
		Plan:   e.Plan,
		Value:  e.Value,
		Detail: e.Detail,
	})
	if err != nil {
		return 0, fmt.Errorf("trace: encode event %d: %w", e.Seq, err)
	}
	return w.Write(append(line, '\n'))
}

// kindFromString inverts Kind.String for trace file parsing.
func kindFromString(s string) (Kind, error) {
	for k := QuerySubmit; k <= QueryRetried; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", s)
}

// TraceFile is a parsed JSONL export.
type TraceFile struct {
	Meta   Meta
	Events []Event
}

// ClassByID returns the class metadata for id, or nil.
func (f *TraceFile) ClassByID(id int) *ClassMeta {
	for i := range f.Meta.Classes {
		if f.Meta.Classes[i].ID == id {
			return &f.Meta.Classes[i]
		}
	}
	return nil
}

// ReadJSONL parses a trace exported by StreamJSONL. Gzip-compressed
// exports (written through a .jsonl.gz sink) are detected by their magic
// bytes and decompressed transparently. The meta line must come first;
// unknown line types are rejected (the format is versioned, not
// open-ended). Corrupt or truncated input yields an error, never a
// panic.
func ReadJSONL(r io.Reader) (*TraceFile, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: gzip: %w", err)
		}
		defer zr.Close()
		return readJSONL(zr)
	}
	return readJSONL(br)
}

func readJSONL(r io.Reader) (*TraceFile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var f TraceFile
	sawMeta := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var disc struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &disc); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		switch disc.Type {
		case "meta":
			if sawMeta {
				return nil, fmt.Errorf("trace: line %d: duplicate meta", lineNo)
			}
			var jm jsonMeta
			if err := json.Unmarshal(line, &jm); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			f.Meta = jm.Meta
			sawMeta = true
		case "event":
			if !sawMeta {
				return nil, fmt.Errorf("trace: line %d: event before meta", lineNo)
			}
			var je jsonEvent
			if err := json.Unmarshal(line, &je); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			kind, err := kindFromString(je.Kind)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			f.Events = append(f.Events, Event{
				Seq:    je.Seq,
				Time:   simclock.Time(je.T),
				Kind:   kind,
				Class:  engine.ClassID(je.Class),
				Query:  engine.QueryID(je.Query),
				Client: engine.ClientID(je.Client),
				Period: je.Period,
				Plan:   je.Plan,
				Value:  je.Value,
				Detail: je.Detail,
			})
		default:
			return nil, fmt.Errorf("trace: line %d: unknown type %q", lineNo, disc.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if !sawMeta {
		return nil, fmt.Errorf("trace: no meta line (not a trace export?)")
	}
	return &f, nil
}

// noTime marks a lifecycle edge a span never reached.
const noTime = simclock.Time(-1)

// Span is one query's reconstructed lifecycle: the times of each edge it
// passed, with the class/cost identity and the plan version in force at
// the edges. Edges the query never reached are -1 (check with the
// predicates below).
type Span struct {
	Query    engine.QueryID
	Class    engine.ClassID
	Client   engine.ClientID
	Cost     float64
	Template string

	Submit    simclock.Time
	Intercept simclock.Time
	Release   simclock.Time
	Start     simclock.Time
	Done      simclock.Time

	SubmitPeriod int
	DonePeriod   int
	SubmitPlan   int
	DonePlan     int
}

// Managed reports whether the patroller intercepted the query.
func (s *Span) Managed() bool { return s.Intercept >= 0 }

// Started reports whether the query began executing.
func (s *Span) Started() bool { return s.Start >= 0 }

// Completed reports whether the query finished inside the trace.
func (s *Span) Completed() bool { return s.Done >= 0 }

// AdmissionWait is the time from submit until execution start — the
// dispatcher's hold time (0 for unintercepted queries, which start
// immediately). For a query still held at end-of-trace pass the trace
// horizon as now; for completed spans now is ignored.
func (s *Span) AdmissionWait(now simclock.Time) float64 {
	switch {
	case s.Started():
		return float64(s.Start - s.Submit)
	default:
		return float64(now - s.Submit)
	}
}

// ExecTime is the execution duration, or the elapsed running time against
// now for spans still executing at end-of-trace.
func (s *Span) ExecTime(now simclock.Time) float64 {
	if !s.Started() {
		return 0
	}
	if s.Completed() {
		return float64(s.Done - s.Start)
	}
	return float64(now - s.Start)
}

// BuildSpans folds lifecycle events into one span per query, ordered by
// query ID. Non-query events (plan changes, workload shifts) are skipped.
func BuildSpans(events []Event) []*Span {
	byID := make(map[engine.QueryID]*Span)
	var order []engine.QueryID
	get := func(e Event) *Span {
		s, ok := byID[e.Query]
		if !ok {
			s = &Span{Query: e.Query, Class: e.Class, Client: e.Client,
				Cost: e.Value, Submit: noTime, Intercept: noTime,
				Release: noTime, Start: noTime, Done: noTime}
			byID[e.Query] = s
			order = append(order, e.Query)
		}
		return s
	}
	for _, e := range events {
		switch e.Kind {
		case QuerySubmit:
			s := get(e)
			s.Submit = e.Time
			s.Template = e.Detail
			s.SubmitPeriod = e.Period
			s.SubmitPlan = e.Plan
		case QueryIntercepted:
			get(e).Intercept = e.Time
		case QueryReleased:
			get(e).Release = e.Time
		case QueryStart:
			get(e).Start = e.Time
		case QueryDone:
			s := get(e)
			s.Done = e.Time
			s.DonePeriod = e.Period
			s.DonePlan = e.Plan
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]*Span, 0, len(order))
	for _, id := range order {
		out = append(out, byID[id])
	}
	return out
}
