package trace

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/patroller"
	"repro/internal/simclock"
)

func TestEmitAndOrder(t *testing.T) {
	tr := New(10)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Time: float64(i), Kind: QuerySubmit})
	}
	events := tr.Events()
	if len(events) != 5 {
		t.Fatalf("Len = %d", len(events))
	}
	for i, e := range events {
		if e.Time != float64(i) {
			t.Fatalf("order broken: %v", events)
		}
		if e.Seq != uint64(i+1) {
			t.Fatalf("seq = %d at %d", e.Seq, i)
		}
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(3)
	for i := 0; i < 7; i++ {
		tr.Emit(Event{Time: float64(i)})
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", tr.Len())
	}
	if tr.Dropped() != 4 {
		t.Fatalf("Dropped = %d, want 4", tr.Dropped())
	}
	if tr.Total() != 7 {
		t.Fatalf("Total = %d", tr.Total())
	}
	events := tr.Events()
	want := []float64{4, 5, 6}
	for i, e := range events {
		if e.Time != want[i] {
			t.Fatalf("retained %v, want last three", events)
		}
	}
}

func TestCountsSurviveEviction(t *testing.T) {
	tr := New(2)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Kind: QuerySubmit})
	}
	tr.Emit(Event{Kind: QueryDone})
	counts := tr.CountByKind()
	if counts[QuerySubmit] != 5 || counts[QueryDone] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestFilterAndQueryHistory(t *testing.T) {
	tr := New(16)
	tr.Emit(Event{Kind: QuerySubmit, Query: 1})
	tr.Emit(Event{Kind: QuerySubmit, Query: 2})
	tr.Emit(Event{Kind: QueryDone, Query: 1})
	hist := tr.QueryHistory(1)
	if len(hist) != 2 || hist[0].Kind != QuerySubmit || hist[1].Kind != QueryDone {
		t.Fatalf("history = %v", hist)
	}
	dones := tr.Filter(func(e Event) bool { return e.Kind == QueryDone })
	if len(dones) != 1 {
		t.Fatalf("filter = %v", dones)
	}
}

func TestWriteTo(t *testing.T) {
	tr := New(2)
	tr.Emit(Event{Time: 1, Kind: QuerySubmit, Detail: "alpha"})
	tr.Emit(Event{Time: 2, Kind: QueryDone, Detail: "beta"})
	tr.Emit(Event{Time: 3, Kind: QueryDone, Detail: "gamma"})
	var b strings.Builder
	tr.WriteTo(&b, 0)
	out := b.String()
	if strings.Contains(out, "alpha") {
		t.Fatal("evicted event rendered")
	}
	for _, want := range []string{"beta", "gamma", "evicted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	tr.WriteTo(&b, 1)
	if strings.Contains(b.String(), "beta") {
		t.Fatal("max limit ignored")
	}
}

func TestInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	New(0)
}

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		QuerySubmit: "submit", QueryStart: "start", QueryDone: "done",
		QueryIntercepted: "intercept", QueryReleased: "release",
		PlanChanged: "plan", WorkloadShift: "shift",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("Kind(%d) = %q", int(k), k.String())
		}
	}
}

func TestAttachEngineRecordsLifecycle(t *testing.T) {
	clock := simclock.New()
	eng := engine.New(engine.Config{CPUCapacity: 10, IOCapacity: 10}, clock)
	tr := New(64)
	AttachEngine(tr, eng)
	q := &engine.Query{Class: 2, Client: 7, Cost: 42, Template: "Q1",
		Demand: engine.Demand{Work: 1, CPURate: 1}}
	eng.Submit(q)
	clock.Run()
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("%d events, want submit+start+done", len(events))
	}
	if events[0].Kind != QuerySubmit || events[0].Detail != "Q1" || events[0].Value != 42 {
		t.Fatalf("submit event = %+v", events[0])
	}
	if events[1].Kind != QueryStart || events[1].Query != events[0].Query {
		t.Fatalf("start event = %+v", events[1])
	}
	if events[2].Kind != QueryDone || !strings.Contains(events[2].Detail, "rt=") {
		t.Fatalf("done event = %+v", events[2])
	}
}

func TestAttachPatrollerChainsHooks(t *testing.T) {
	clock := simclock.New()
	eng := engine.New(engine.Config{CPUCapacity: 10, IOCapacity: 10}, clock)
	pat := patroller.New(eng, 1)
	prior := 0
	pat.OnArrival = func(*patroller.QueryInfo) { prior++ }
	tr := New(64)
	AttachPatroller(tr, pat, clock)
	pat.SetPolicy(patroller.SystemLimit{Limit: 1000})

	q := &engine.Query{Class: 1, Cost: 10, Demand: engine.Demand{Work: 1, CPURate: 1}}
	eng.Submit(q)
	clock.Run()
	if prior != 1 {
		t.Fatal("pre-existing hook not chained")
	}
	kinds := tr.CountByKind()
	if kinds[QueryIntercepted] != 1 || kinds[QueryReleased] != 1 {
		t.Fatalf("counts = %v", kinds)
	}
}
