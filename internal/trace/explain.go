// The qtrace explain engine: answers "why did class X behave that way in
// period K?" from an exported JSONL trace — admission-wait vs execution
// breakdown, queue-depth timeline, plan-change markers, and a per-query
// lifetime Gantt. cmd/qtrace is a thin flag wrapper over this file so the
// logic stays testable.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/simclock"
)

// ExplainQuery addresses one class/period cell of the report tables, or
// a contiguous run of periods ("period=3-5").
type ExplainQuery struct {
	Class  engine.ClassID
	Period int // 1-based, as report tables print it
	// PeriodEnd is the inclusive last period of a range selector; zero
	// means the single period named by Period.
	PeriodEnd int
}

// ParseExplainQuery parses an -explain spec like "class=B period=3" or
// "class=B period=3-5". Classes may be named by numeric ID, by letter
// (A = the first class in the trace header, B the second, ...), or by
// class name; periods are 1-based to match the period tables, singly or
// as an inclusive range.
func ParseExplainQuery(spec string, meta Meta) (ExplainQuery, error) {
	var q ExplainQuery
	sawClass, sawPeriod := false, false
	for _, field := range strings.Fields(spec) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return q, fmt.Errorf("explain: %q is not key=value", field)
		}
		switch key {
		case "class":
			id, err := resolveClass(val, meta)
			if err != nil {
				return q, err
			}
			q.Class = id
			sawClass = true
		case "period":
			lo, hi, ranged := strings.Cut(val, "-")
			p, err := strconv.Atoi(lo)
			if err != nil {
				return q, fmt.Errorf("explain: bad period %q", val)
			}
			if p < 1 || p > meta.Periods {
				return q, fmt.Errorf("explain: period %d out of range 1..%d", p, meta.Periods)
			}
			q.Period = p
			if ranged {
				pe, err := strconv.Atoi(hi)
				if err != nil {
					return q, fmt.Errorf("explain: bad period range %q", val)
				}
				if pe < p || pe > meta.Periods {
					return q, fmt.Errorf("explain: period range %q out of order or beyond 1..%d", val, meta.Periods)
				}
				q.PeriodEnd = pe
			}
			sawPeriod = true
		default:
			return q, fmt.Errorf("explain: unknown key %q (want class=, period=)", key)
		}
	}
	if !sawClass || !sawPeriod {
		return q, fmt.Errorf("explain: spec %q must set class= and period=", spec)
	}
	return q, nil
}

// resolveClass maps a class spec (ID, letter, or name) to a class ID.
func resolveClass(val string, meta Meta) (engine.ClassID, error) {
	if n, err := strconv.Atoi(val); err == nil {
		for _, c := range meta.Classes {
			if c.ID == n {
				return engine.ClassID(n), nil
			}
		}
		return 0, fmt.Errorf("explain: no class with ID %d in trace", n)
	}
	if len(val) == 1 && val[0] >= 'A' && val[0] <= 'Z' {
		i := int(val[0] - 'A')
		if i < len(meta.Classes) {
			return engine.ClassID(meta.Classes[i].ID), nil
		}
		return 0, fmt.Errorf("explain: class %q but trace has only %d classes", val, len(meta.Classes))
	}
	for _, c := range meta.Classes {
		if strings.EqualFold(c.Name, val) {
			return engine.ClassID(c.ID), nil
		}
	}
	return 0, fmt.Errorf("explain: unknown class %q", val)
}

// Explanation is the analyzed cell, ready to render.
type Explanation struct {
	Meta   Meta
	Class  ClassMeta
	Period int // 1-based
	// PeriodEnd is the inclusive last period of the analyzed window;
	// equal to Period for single-period queries.
	PeriodEnd int
	Start     simclock.Time
	End       simclock.Time
	// Horizon is the trace's last event time (spans still open accrue
	// wait/execution against it).
	Horizon simclock.Time

	// Completed spans of the class whose DoneTime falls in the period —
	// the same bucketing the metrics.Collector period tables use.
	Completed []*Span
	// Submitted counts class queries arriving during the period.
	Submitted int
	// PendingAtEnd counts class queries submitted by period end and not
	// completed by then (still held or executing).
	PendingAtEnd int

	WaitMean, WaitMax, WaitTotal float64
	ExecMean, ExecMax, ExecTotal float64
	// VelocityMean is the mean per-query velocity (exec/response) of the
	// period's completions.
	VelocityMean float64

	// QueueDepth[i] samples how many class queries were held at the
	// patroller at the start of the i-th of QueueBins equal slices of
	// the period.
	QueueDepth []float64
	// PlanAtStart is the plan version in force when the period began.
	PlanAtStart int
	// PlanChanges lists the PlanChanged events inside the period.
	PlanChanges []Event
}

// QueueBins is the queue-depth timeline resolution.
const QueueBins = 60

// Explain analyzes one class/period cell of a parsed trace.
func Explain(f *TraceFile, q ExplainQuery) (*Explanation, error) {
	var horizon simclock.Time
	for _, e := range f.Events {
		if e.Time > horizon {
			horizon = e.Time
		}
	}
	return explainCell(f.Meta, f.Events, horizon, q)
}

// SpecError marks a malformed or out-of-range -explain spec, so callers
// can distinguish usage mistakes from trace problems.
type SpecError struct{ Err error }

func (e *SpecError) Error() string { return e.Err.Error() }
func (e *SpecError) Unwrap() error { return e.Err }

// ExplainJSONL streams a JSONL export and explains one cell, holding
// only the target class's events and the trace's plan changes in memory
// rather than the whole event list. The output is identical to
// ReadJSONL followed by Explain. Spec errors are wrapped in *SpecError.
func ExplainJSONL(r io.Reader, spec string) (*Explanation, error) {
	var (
		meta    Meta
		q       ExplainQuery
		events  []Event
		horizon simclock.Time
	)
	err := ScanJSONL(r,
		func(m Meta) error {
			meta = m
			var perr error
			if q, perr = ParseExplainQuery(spec, m); perr != nil {
				return &SpecError{Err: perr}
			}
			return nil
		},
		func(e Event) error {
			// The horizon is the last event time of the WHOLE trace, not
			// of the kept subset — open spans accrue wait against it.
			if e.Time > horizon {
				horizon = e.Time
			}
			if e.Class == q.Class || e.Kind == PlanChanged {
				events = append(events, e)
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return explainCell(meta, events, horizon, q)
}

// explainCell analyzes a cell from the trace header, an event slice,
// and the trace-wide horizon (max event time over all events). events
// may be the full trace or any superset of the target class's events
// plus every PlanChanged event — BuildSpans skips non-lifecycle kinds
// and the analysis filters spans by class, so both give the same
// answer.
func explainCell(meta Meta, events []Event, horizon simclock.Time, q ExplainQuery) (*Explanation, error) {
	cm := meta.ClassByID(int(q.Class))
	if cm == nil {
		return nil, fmt.Errorf("explain: class %d not in trace header", q.Class)
	}
	if meta.PeriodSeconds <= 0 {
		return nil, fmt.Errorf("explain: trace header has no period length")
	}
	pe := q.PeriodEnd
	if pe == 0 {
		pe = q.Period
	}
	if pe < q.Period {
		return nil, fmt.Errorf("explain: period range %d-%d out of order", q.Period, pe)
	}
	ex := &Explanation{
		Meta:      meta,
		Class:     *cm,
		Period:    q.Period,
		PeriodEnd: pe,
		Start:     simclock.Time(q.Period-1) * meta.PeriodSeconds,
		End:       simclock.Time(pe) * meta.PeriodSeconds,
		Horizon:   horizon,
	}
	if ex.Horizon < ex.End {
		ex.Horizon = ex.End
	}

	spans := BuildSpans(events)
	for _, s := range spans {
		if s.Class != q.Class {
			continue
		}
		if s.Submit >= ex.Start && s.Submit < ex.End {
			ex.Submitted++
		}
		if s.Submit < ex.End && (!s.Completed() || s.Done >= ex.End) {
			ex.PendingAtEnd++
		}
		if s.Completed() && s.Done >= ex.Start && s.Done < ex.End {
			ex.Completed = append(ex.Completed, s)
		}
	}
	for _, s := range ex.Completed {
		w, x := s.AdmissionWait(ex.Horizon), s.ExecTime(ex.Horizon)
		ex.WaitTotal += w
		ex.ExecTotal += x
		if w > ex.WaitMax {
			ex.WaitMax = w
		}
		if x > ex.ExecMax {
			ex.ExecMax = x
		}
		if resp := w + x; resp > 0 {
			ex.VelocityMean += x / resp
		}
	}
	if n := float64(len(ex.Completed)); n > 0 {
		ex.WaitMean = ex.WaitTotal / n
		ex.ExecMean = ex.ExecTotal / n
		ex.VelocityMean /= n
	}

	// Queue depth: a query is "held" from interception to release (or the
	// horizon, if never released).
	ex.QueueDepth = make([]float64, QueueBins)
	binLen := (ex.End - ex.Start) / QueueBins
	for _, s := range spans {
		if s.Class != q.Class || !s.Managed() {
			continue
		}
		held0 := s.Intercept
		held1 := ex.Horizon
		if s.Release >= 0 {
			held1 = s.Release
		}
		for i := 0; i < QueueBins; i++ {
			at := ex.Start + simclock.Time(i)*binLen
			if at >= held0 && at < held1 {
				ex.QueueDepth[i]++
			}
		}
	}

	for _, e := range events {
		if e.Kind != PlanChanged {
			continue
		}
		if e.Time < ex.Start {
			ex.PlanAtStart = e.Plan
		} else if e.Time < ex.End {
			ex.PlanChanges = append(ex.PlanChanges, e)
		}
	}
	return ex, nil
}

// ganttRows caps the lifetime Gantt at the longest-response completions.
const ganttRows = 12

// ganttWidth is the Gantt's time-axis resolution in columns.
const ganttWidth = 48

// periodLabel names the analyzed window: "period 3" or "periods 3-5".
func (ex *Explanation) periodLabel() string {
	if ex.PeriodEnd > ex.Period {
		return fmt.Sprintf("periods %d-%d", ex.Period, ex.PeriodEnd)
	}
	return fmt.Sprintf("period %d", ex.Period)
}

// Render writes the explanation as a terminal report.
func (ex *Explanation) Render(w io.Writer) {
	fmt.Fprintf(w, "Trace: %s (seed %d), %d × %.0fs periods\n",
		ex.Meta.Experiment, ex.Meta.Seed, ex.Meta.Periods, ex.Meta.PeriodSeconds)
	fmt.Fprintf(w, "Class %d %q (%s, %s), %s [%.0fs, %.0fs)\n\n",
		ex.Class.ID, ex.Class.Name, ex.Class.Kind, ex.Class.Goal,
		ex.periodLabel(), ex.Start, ex.End)

	fmt.Fprintf(w, "Lifecycle breakdown (completions in %s, done-time bucketing):\n", ex.periodLabel())
	fmt.Fprintf(w, "  completed:             %d\n", len(ex.Completed))
	if len(ex.Completed) > 0 {
		resp := ex.WaitTotal + ex.ExecTotal
		pct := func(part float64) float64 {
			if resp <= 0 {
				return 0
			}
			return 100 * part / resp
		}
		fmt.Fprintf(w, "  admission wait:        mean %8.1fs  max %8.1fs  total %10.1fs  (%4.1f%% of response)\n",
			ex.WaitMean, ex.WaitMax, ex.WaitTotal, pct(ex.WaitTotal))
		fmt.Fprintf(w, "  execution:             mean %8.1fs  max %8.1fs  total %10.1fs  (%4.1f%% of response)\n",
			ex.ExecMean, ex.ExecMax, ex.ExecTotal, pct(ex.ExecTotal))
		fmt.Fprintf(w, "  mean velocity:         %.2f\n", ex.VelocityMean)
	}
	fmt.Fprintf(w, "  submitted in window:   %d\n", ex.Submitted)
	fmt.Fprintf(w, "  pending at window end: %d (still held or executing)\n\n", ex.PendingAtEnd)

	depth := report.Chart{
		Title:  fmt.Sprintf("Queue depth (class %d held at patroller), %s", ex.Class.ID, ex.periodLabel()),
		YLabel: "queries held",
		XLabel: fmt.Sprintf("window sliced into %d bins", QueueBins),
		Height: 8,
		Series: []report.Series{{Name: fmt.Sprintf("class %d", ex.Class.ID), Values: ex.QueueDepth}},
	}
	fmt.Fprintln(w, depth.Render())

	fmt.Fprintf(w, "Plan changes in %s (plan v%d in force at window start):\n", ex.periodLabel(), ex.PlanAtStart)
	if len(ex.PlanChanges) == 0 {
		fmt.Fprintf(w, "  (none — limits stayed at plan v%d)\n", ex.PlanAtStart)
	}
	for _, e := range ex.PlanChanges {
		fmt.Fprintf(w, "  t=%8.1fs  v%-4d utility=%.3f  %s\n", e.Time, e.Plan, e.Value, e.Detail)
	}
	fmt.Fprintln(w)

	ex.renderGantt(w)
}

// renderGantt draws the period's longest-response completions as rows of
// '.' (admission wait) and '#' (execution) over the period's time axis.
func (ex *Explanation) renderGantt(w io.Writer) {
	spans := append([]*Span(nil), ex.Completed...)
	sort.Slice(spans, func(i, j int) bool {
		ri := spans[i].AdmissionWait(ex.Horizon) + spans[i].ExecTime(ex.Horizon)
		rj := spans[j].AdmissionWait(ex.Horizon) + spans[j].ExecTime(ex.Horizon)
		if ri > rj {
			return true
		}
		if rj > ri {
			return false
		}
		return spans[i].Query < spans[j].Query // deterministic tiebreak
	})
	if len(spans) > ganttRows {
		spans = spans[:ganttRows]
	}
	fmt.Fprintf(w, "Query lifetimes (longest %d responses completing in %s; '.' waiting, '#' executing):\n",
		len(spans), ex.periodLabel())
	if len(spans) == 0 {
		fmt.Fprintln(w, "  (no completions)")
		return
	}
	col := func(at simclock.Time) int {
		frac := float64(at-ex.Start) / float64(ex.End-ex.Start)
		c := int(frac * float64(ganttWidth))
		if c < 0 {
			c = 0
		}
		if c >= ganttWidth {
			c = ganttWidth - 1
		}
		return c
	}
	for _, s := range spans {
		row := []byte(strings.Repeat(" ", ganttWidth))
		start := s.Start
		if start < 0 {
			start = s.Done
		}
		for c := col(s.Submit); c <= col(start); c++ {
			row[c] = '.'
		}
		for c := col(start); c <= col(s.Done); c++ {
			row[c] = '#'
		}
		clip := ' '
		if s.Submit < ex.Start {
			clip = '<' // lifetime begins before the period window
		}
		fmt.Fprintf(w, "  q%-7d cost %7.0f %c|%s|  wait %8.1fs  exec %8.1fs\n",
			s.Query, s.Cost, clip, row,
			s.AdmissionWait(ex.Horizon), s.ExecTime(ex.Horizon))
	}
}

// summaryAcc accumulates the per-kind and per-class tallies the trace
// summary prints; it needs each event once, never the full list.
type summaryAcc struct {
	total   int
	counts  map[Kind]int
	byClass map[engine.ClassID]int
}

func newSummaryAcc() *summaryAcc {
	return &summaryAcc{counts: make(map[Kind]int), byClass: make(map[engine.ClassID]int)}
}

func (a *summaryAcc) add(e Event) {
	a.total++
	a.counts[e.Kind]++
	if e.Kind == QueryDone {
		a.byClass[e.Class]++
	}
}

func (a *summaryAcc) render(w io.Writer, meta Meta) {
	fmt.Fprintf(w, "Trace: %s (seed %d), format v%d\n", meta.Experiment, meta.Seed, meta.Version)
	fmt.Fprintf(w, "Schedule: %d periods × %.0fs\n", meta.Periods, meta.PeriodSeconds)
	for i, c := range meta.Classes {
		fmt.Fprintf(w, "  class %d %q (%s): %s  [letter %c]\n", c.ID, c.Name, c.Kind, c.Goal, 'A'+i)
	}
	fmt.Fprintf(w, "Events: %d\n", a.total)
	for k := QuerySubmit; k <= WorkloadShift; k++ {
		if a.counts[k] > 0 {
			fmt.Fprintf(w, "  %-10s %d\n", k.String(), a.counts[k])
		}
	}
	var ids []engine.ClassID
	for id := range a.byClass {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(w, "Completions class %d: %d\n", id, a.byClass[id])
	}
}

// Summarize writes the trace's header and per-kind event counts — the
// default qtrace view when no -explain spec is given.
func Summarize(w io.Writer, f *TraceFile) {
	acc := newSummaryAcc()
	for _, e := range f.Events {
		acc.add(e)
	}
	acc.render(w, f.Meta)
}

// SummarizeJSONL streams a JSONL export and writes the same summary as
// Summarize, in constant memory. Nothing is written until the scan
// succeeds, so a corrupt trace produces an error and no partial output.
func SummarizeJSONL(w io.Writer, r io.Reader) error {
	var meta Meta
	acc := newSummaryAcc()
	err := ScanJSONL(r,
		func(m Meta) error { meta = m; return nil },
		func(e Event) error { acc.add(e); return nil })
	if err != nil {
		return err
	}
	acc.render(w, meta)
	return nil
}
