package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
)

// emitN streams a meta line and n submit events through a sink.
func emitN(t *testing.T, s *Sink, n int) {
	t.Helper()
	tr := New(16)
	if err := tr.StreamJSONL(s, Meta{Experiment: "sink-test", Periods: 1, PeriodSeconds: 60}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tr.Emit(Event{
			Time:  float64(i),
			Kind:  QuerySubmit,
			Class: 1,
			Query: engine.QueryID(i + 1),
			Value: 100,
		})
	}
	if err := tr.SinkErr(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestGzipSinkRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl.gz")
	s, err := OpenSink(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Gzipped() || s.Rotating() {
		t.Fatalf("gzipped=%v rotating=%v", s.Gzipped(), s.Rotating())
	}
	emitN(t, s, 25)

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// ReadJSONL must sniff the gzip magic and decompress transparently.
	tf, err := ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if tf.Meta.Experiment != "sink-test" || len(tf.Events) != 25 {
		t.Fatalf("meta=%q events=%d", tf.Meta.Experiment, len(tf.Events))
	}
}

func TestRotatingSinkSegmentsAreIndependentlyParseable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	// ~120-byte lines against a 1 KiB threshold forces several rotations.
	s, err := OpenSink(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	emitN(t, s, 60)
	if s.Rotations() == 0 {
		t.Fatal("sink never rotated")
	}

	// Every segment — rotated and current — must start with the meta line
	// and parse on its own; together they carry all 60 events exactly once.
	total := 0
	for i := 0; i <= s.Rotations(); i++ {
		seg := path
		if i < s.Rotations() {
			seg = fmt.Sprintf("%s.%d", path, i+1)
		}
		f, err := os.Open(seg)
		if err != nil {
			t.Fatal(err)
		}
		tf, err := ReadJSONL(f)
		f.Close()
		if err != nil {
			t.Fatalf("segment %s: %v", seg, err)
		}
		if tf.Meta.Experiment != "sink-test" {
			t.Fatalf("segment %s missing replayed meta", seg)
		}
		total += len(tf.Events)
	}
	if total != 60 {
		t.Fatalf("segments carry %d events, want 60", total)
	}
}

func TestSinkCloseIdempotentAndWriteAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	s, err := OpenSink(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	emitN(t, s, 1)
	if err := s.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
	if _, err := s.Write([]byte("{}\n")); err == nil {
		t.Fatal("write to closed sink succeeded")
	}
}

func TestOpenSinkRejectsNegativeRotation(t *testing.T) {
	if _, err := OpenSink(filepath.Join(t.TempDir(), "x.jsonl"), -1); err == nil {
		t.Fatal("negative rotation threshold accepted")
	}
}
