package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/engine"
)

// explainMeta is a two-class header for spec-parsing and explain tests.
func explainMeta() Meta {
	return Meta{
		Experiment:    "test",
		Seed:          7,
		PeriodSeconds: 100,
		Periods:       3,
		Classes: []ClassMeta{
			{ID: 1, Name: "Class 1", Kind: "OLAP", Goal: "velocity >= 0.40", Target: 0.4},
			{ID: 2, Name: "Class 2", Kind: "OLAP", Goal: "velocity >= 0.60", Target: 0.6},
		},
	}
}

func TestParseExplainQuery(t *testing.T) {
	meta := explainMeta()
	cases := []struct {
		spec  string
		class engine.ClassID
		per   int
	}{
		{"class=1 period=1", 1, 1},
		{"class=B period=3", 2, 3}, // letter B = second class in header = ID 2
		{"period=2 class=A", 1, 2},
		{"class=Class 2 period=1", 0, 0}, // space splits the name: error
	}
	for _, c := range cases {
		q, err := ParseExplainQuery(c.spec, meta)
		if c.class == 0 {
			if err == nil {
				t.Errorf("%q: want error, got %+v", c.spec, q)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", c.spec, err)
			continue
		}
		if q.Class != c.class || q.Period != c.per {
			t.Errorf("%q: got class=%d period=%d, want class=%d period=%d",
				c.spec, q.Class, q.Period, c.class, c.per)
		}
	}
	for _, bad := range []string{
		"", "class=1", "period=1", "class=9 period=1", "class=Z period=1",
		"class=1 period=0", "class=1 period=4", "class=1 period=x",
		"class=1 period=1 bogus=2", "class=1period=1",
	} {
		if _, err := ParseExplainQuery(bad, meta); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
	// Name resolution works when the name has no spaces.
	meta.Classes[1].Name = "batch"
	if q, err := ParseExplainQuery("class=batch period=2", meta); err != nil || q.Class != 2 {
		t.Errorf("name lookup: got %+v, %v", q, err)
	}
}

// explainEvents builds a small three-period lifecycle history for class 2:
//   - q1: submit 10, intercept 10, release 40, start 40, done 90
//     (wait 30, exec 50, completes in period 1)
//   - q2: submit 50, intercept 50, release 120, start 120, done 180
//     (wait 70, exec 60, completes in period 2)
//   - q3: submit 150, intercepted, never released (pending forever)
//
// Plus one class-1 query completing in period 1 (must not leak into
// class-2 cells) and a plan change at t=110.
func explainEvents() []Event {
	return []Event{
		{Time: 5, Kind: QuerySubmit, Class: 1, Query: 9, Value: 100},
		{Time: 5, Kind: QueryStart, Class: 1, Query: 9},
		{Time: 10, Kind: QuerySubmit, Class: 2, Query: 1, Value: 5000},
		{Time: 10, Kind: QueryIntercepted, Class: 2, Query: 1},
		{Time: 20, Kind: QueryDone, Class: 1, Query: 9, Period: 0},
		{Time: 40, Kind: QueryReleased, Class: 2, Query: 1},
		{Time: 40, Kind: QueryStart, Class: 2, Query: 1},
		{Time: 50, Kind: QuerySubmit, Class: 2, Query: 2, Value: 8000},
		{Time: 50, Kind: QueryIntercepted, Class: 2, Query: 2},
		{Time: 90, Kind: QueryDone, Class: 2, Query: 1, Period: 0},
		{Time: 110, Kind: PlanChanged, Plan: 1, Value: 2.5, Detail: "limits: 1=5000 2=9000"},
		{Time: 120, Kind: QueryReleased, Class: 2, Query: 2},
		{Time: 120, Kind: QueryStart, Class: 2, Query: 2},
		{Time: 150, Kind: QuerySubmit, Class: 2, Query: 3, Value: 12000},
		{Time: 150, Kind: QueryIntercepted, Class: 2, Query: 3},
		{Time: 180, Kind: QueryDone, Class: 2, Query: 2, Period: 1},
		{Time: 250, Kind: WorkloadShift, Value: 1},
	}
}

func TestExplainBreakdown(t *testing.T) {
	f := &TraceFile{Meta: explainMeta(), Events: explainEvents()}

	// Period 1, class 2: only q1 completes there.
	ex, err := Explain(f, ExplainQuery{Class: 2, Period: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Completed) != 1 || ex.Completed[0].Query != 1 {
		t.Fatalf("period 1 completions = %+v, want just q1", ex.Completed)
	}
	if ex.WaitMean != 30 || ex.ExecMean != 50 {
		t.Errorf("q1 wait/exec = %g/%g, want 30/50", ex.WaitMean, ex.ExecMean)
	}
	if ex.VelocityMean != 50.0/80 {
		t.Errorf("velocity = %g, want %g", ex.VelocityMean, 50.0/80)
	}
	// q1 and q2 submitted in [0,100); only q2 is pending at t=100 (q3
	// arrives later, in period 2).
	if ex.Submitted != 2 || ex.PendingAtEnd != 1 {
		t.Errorf("submitted=%d pending=%d, want 2/1", ex.Submitted, ex.PendingAtEnd)
	}
	if ex.PlanAtStart != 0 || len(ex.PlanChanges) != 0 {
		t.Errorf("period 1 plan state: v%d with %d changes, want v0 with none",
			ex.PlanAtStart, len(ex.PlanChanges))
	}
	// Queue depth: q1 held [10,40), q2 held [50,100-end). With 60 bins over
	// [0,100), bin 6 samples t=10 (depth 1) and bin 36 samples t=60.
	if ex.QueueDepth[0] != 0 || ex.QueueDepth[6] != 1 || ex.QueueDepth[36] != 1 {
		t.Errorf("queue depth samples = %v/%v/%v, want 0/1/1",
			ex.QueueDepth[0], ex.QueueDepth[6], ex.QueueDepth[36])
	}

	// Period 2: q2 completes; the plan change at t=110 is in-window.
	ex2, err := Explain(f, ExplainQuery{Class: 2, Period: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex2.Completed) != 1 || ex2.Completed[0].Query != 2 {
		t.Fatalf("period 2 completions = %+v, want just q2", ex2.Completed)
	}
	if ex2.WaitMean != 70 || ex2.ExecMean != 60 {
		t.Errorf("q2 wait/exec = %g/%g, want 70/60", ex2.WaitMean, ex2.ExecMean)
	}
	if len(ex2.PlanChanges) != 1 || ex2.PlanChanges[0].Plan != 1 {
		t.Errorf("period 2 plan changes = %+v, want the v1 change", ex2.PlanChanges)
	}
	// q3 (never done) and nothing else pending at t=200.
	if ex2.PendingAtEnd != 1 {
		t.Errorf("period 2 pending = %d, want 1 (q3)", ex2.PendingAtEnd)
	}

	// Period 3: no completions; plan v1 in force at start.
	ex3, err := Explain(f, ExplainQuery{Class: 2, Period: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex3.Completed) != 0 || ex3.PlanAtStart != 1 {
		t.Errorf("period 3: %d completions plan v%d, want 0 completions v1",
			len(ex3.Completed), ex3.PlanAtStart)
	}
}

func TestExplainRender(t *testing.T) {
	f := &TraceFile{Meta: explainMeta(), Events: explainEvents()}
	ex, err := Explain(f, ExplainQuery{Class: 2, Period: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	ex.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		"admission wait", "execution", "Queue depth", "Plan changes",
		"limits: 1=5000 2=9000", "Query lifetimes", "q2", "#",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Rendering must be deterministic (it feeds golden CI assertions).
	var sb2 strings.Builder
	ex2, _ := Explain(f, ExplainQuery{Class: 2, Period: 2})
	ex2.Render(&sb2)
	if sb2.String() != out {
		t.Error("render not deterministic across Explain calls")
	}
}

func TestExplainErrors(t *testing.T) {
	f := &TraceFile{Meta: explainMeta(), Events: nil}
	if _, err := Explain(f, ExplainQuery{Class: 99, Period: 1}); err == nil {
		t.Error("unknown class: want error")
	}
	f.Meta.PeriodSeconds = 0
	if _, err := Explain(f, ExplainQuery{Class: 1, Period: 1}); err == nil {
		t.Error("no period length: want error")
	}
}

func TestSummarize(t *testing.T) {
	f := &TraceFile{Meta: explainMeta(), Events: explainEvents()}
	var sb strings.Builder
	Summarize(&sb, f)
	out := sb.String()
	for _, want := range []string{
		"test (seed 7)", "3 periods", "Class 2", "[letter B]",
		"submit", "done", "plan", "Completions class 2: 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// encodeJSONL renders a (meta, events) pair exactly as a StreamJSONL
// sink would, so streaming readers can be tested against in-memory ones.
func encodeJSONL(t *testing.T, meta Meta, events []Event) []byte {
	t.Helper()
	line, err := json.Marshal(jsonMeta{Type: "meta", Meta: meta})
	if err != nil {
		t.Fatal(err)
	}
	buf := append(line, '\n')
	for i := range events {
		buf = appendEventLine(buf, &events[i])
	}
	return buf
}

// TestExplainJSONLMatchesInMemory pins the streaming explain/summary
// paths to the ReadJSONL-based ones: same bytes in, same bytes out.
func TestExplainJSONLMatchesInMemory(t *testing.T) {
	raw := encodeJSONL(t, explainMeta(), explainEvents())

	tf, err := ReadJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"class=2 period=1", "class=B period=2", "class=1 period=3"} {
		q, err := ParseExplainQuery(spec, tf.Meta)
		if err != nil {
			t.Fatal(err)
		}
		exMem, err := Explain(tf, q)
		if err != nil {
			t.Fatal(err)
		}
		exStream, err := ExplainJSONL(bytes.NewReader(raw), spec)
		if err != nil {
			t.Fatal(err)
		}
		var mem, stream strings.Builder
		exMem.Render(&mem)
		exStream.Render(&stream)
		if mem.String() != stream.String() {
			t.Errorf("%s: streamed explain diverges from in-memory:\n--- in-memory\n%s\n--- streamed\n%s",
				spec, mem.String(), stream.String())
		}
	}

	var mem, stream strings.Builder
	Summarize(&mem, tf)
	if err := SummarizeJSONL(&stream, bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
	if mem.String() != stream.String() {
		t.Errorf("streamed summary diverges from in-memory:\n--- in-memory\n%s\n--- streamed\n%s",
			mem.String(), stream.String())
	}
}

func TestParseExplainQueryRange(t *testing.T) {
	meta := explainMeta()
	cases := []struct {
		spec     string
		per, end int
	}{
		{"class=B period=1-3", 1, 3},
		{"class=1 period=2-3", 2, 3},
		{"class=A period=2-2", 2, 2}, // degenerate range is allowed
	}
	for _, c := range cases {
		q, err := ParseExplainQuery(c.spec, meta)
		if err != nil {
			t.Errorf("%q: %v", c.spec, err)
			continue
		}
		if q.Period != c.per || q.PeriodEnd != c.end {
			t.Errorf("%q: got period=%d end=%d, want %d-%d",
				c.spec, q.Period, q.PeriodEnd, c.per, c.end)
		}
	}
	for _, bad := range []string{
		"class=1 period=3-1", // reversed
		"class=1 period=1-4", // end beyond meta.Periods
		"class=1 period=0-2", // start out of range
		"class=1 period=1-x", // non-numeric end
		"class=1 period=-2",  // missing start
	} {
		if _, err := ParseExplainQuery(bad, meta); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}

func TestExplainPeriodRange(t *testing.T) {
	f := &TraceFile{Meta: explainMeta(), Events: explainEvents()}
	ex, err := Explain(f, ExplainQuery{Class: 2, Period: 1, PeriodEnd: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The [0,200) window aggregates q1 (period 1) and q2 (period 2).
	if ex.Start != 0 || ex.End != 200 {
		t.Errorf("window = [%g,%g), want [0,200)", ex.Start, ex.End)
	}
	if len(ex.Completed) != 2 || ex.Completed[0].Query != 1 || ex.Completed[1].Query != 2 {
		t.Fatalf("range completions = %+v, want q1+q2", ex.Completed)
	}
	if ex.WaitTotal != 100 || ex.ExecTotal != 110 {
		t.Errorf("wait/exec totals = %g/%g, want 100/110", ex.WaitTotal, ex.ExecTotal)
	}
	// All three class-2 submissions land in [0,200); only q3 is pending at t=200.
	if ex.Submitted != 3 || ex.PendingAtEnd != 1 {
		t.Errorf("submitted=%d pending=%d, want 3/1", ex.Submitted, ex.PendingAtEnd)
	}
	// The t=110 plan change is inside the range window; none precede it.
	if ex.PlanAtStart != 0 || len(ex.PlanChanges) != 1 || ex.PlanChanges[0].Plan != 1 {
		t.Errorf("plan state: v%d with changes %+v, want v0 with the v1 change",
			ex.PlanAtStart, ex.PlanChanges)
	}

	var sb strings.Builder
	ex.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		"periods 1-2 [0s, 200s)", "completions in periods 1-2",
		"submitted in window:   3", "Plan changes in periods 1-2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("range render missing %q:\n%s", want, out)
		}
	}

	// A reversed range handed directly to Explain (bypassing the parser)
	// must still be rejected.
	if _, err := Explain(f, ExplainQuery{Class: 2, Period: 3, PeriodEnd: 1}); err == nil {
		t.Error("reversed range: want error")
	}
}

// oltpMeta/oltpEvents model an unmanaged OLTP class: queries start the
// instant they are submitted (no interception), so admission wait comes
// only from engine queueing. Times are binary-exact so the breakdown
// asserts equality without tolerances.
func oltpMeta() Meta {
	m := explainMeta()
	m.Classes = append(m.Classes, ClassMeta{
		ID: 3, Name: "orders", Kind: "OLTP",
		Goal: "avg response <= 0.25", Target: 0.25,
	})
	return m
}

func oltpEvents() []Event {
	return []Event{
		// q11: zero wait, exec 0.25, completes in period 1.
		{Time: 10, Kind: QuerySubmit, Class: 3, Query: 11, Value: 40},
		{Time: 10, Kind: QueryStart, Class: 3, Query: 11},
		{Time: 10.25, Kind: QueryDone, Class: 3, Query: 11, Period: 0},
		// q12: wait 0.5 (engine queueing), exec 0.5, completes in period 2.
		{Time: 150, Kind: QuerySubmit, Class: 3, Query: 12, Value: 40},
		{Time: 150.5, Kind: QueryStart, Class: 3, Query: 12},
		{Time: 151, Kind: QueryDone, Class: 3, Query: 12, Period: 1},
		// An OLAP completion that must not leak into the OLTP cell.
		{Time: 20, Kind: QuerySubmit, Class: 2, Query: 1, Value: 5000},
		{Time: 20, Kind: QueryStart, Class: 2, Query: 1},
		{Time: 90, Kind: QueryDone, Class: 2, Query: 1, Period: 0},
	}
}

func TestExplainOLTPClass(t *testing.T) {
	f := &TraceFile{Meta: oltpMeta(), Events: oltpEvents()}
	q, err := ParseExplainQuery("class=C period=1-2", f.Meta)
	if err != nil {
		t.Fatal(err)
	}
	if q.Class != 3 || q.Period != 1 || q.PeriodEnd != 2 {
		t.Fatalf("parsed %+v, want class 3 periods 1-2", q)
	}
	ex, err := Explain(f, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Completed) != 2 {
		t.Fatalf("OLTP completions = %+v, want q11+q12", ex.Completed)
	}
	if ex.WaitTotal != 0.5 || ex.ExecTotal != 0.75 {
		t.Errorf("wait/exec totals = %g/%g, want 0.5/0.75", ex.WaitTotal, ex.ExecTotal)
	}
	// Per-query velocities: q11 = 1 (no wait), q12 = 0.5.
	if ex.VelocityMean != 0.75 {
		t.Errorf("velocity mean = %g, want 0.75", ex.VelocityMean)
	}
	// OLTP queries are never held at the patroller: flat queue depth.
	for i, d := range ex.QueueDepth {
		if d != 0 {
			t.Errorf("queue depth bin %d = %g, want 0 (unmanaged class)", i, d)
		}
	}
	var sb strings.Builder
	ex.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		`Class 3 "orders" (OLTP, avg response <= 0.25)`, "periods 1-2",
		"completed:             2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OLTP render missing %q:\n%s", want, out)
		}
	}
}

// TestExplainJSONLRangeMatchesInMemory extends the streaming-equivalence
// pin to range selectors and the OLTP class.
func TestExplainJSONLRangeMatchesInMemory(t *testing.T) {
	fixtures := []struct {
		meta   Meta
		events []Event
		specs  []string
	}{
		{explainMeta(), explainEvents(), []string{"class=B period=1-2", "class=2 period=1-3", "class=1 period=2-3"}},
		{oltpMeta(), oltpEvents(), []string{"class=C period=1-2", "class=orders period=1-3"}},
	}
	for _, fx := range fixtures {
		raw := encodeJSONL(t, fx.meta, fx.events)
		tf, err := ReadJSONL(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range fx.specs {
			q, err := ParseExplainQuery(spec, tf.Meta)
			if err != nil {
				t.Fatal(err)
			}
			exMem, err := Explain(tf, q)
			if err != nil {
				t.Fatal(err)
			}
			exStream, err := ExplainJSONL(bytes.NewReader(raw), spec)
			if err != nil {
				t.Fatal(err)
			}
			var mem, stream strings.Builder
			exMem.Render(&mem)
			exStream.Render(&stream)
			if mem.String() != stream.String() {
				t.Errorf("%s: streamed explain diverges from in-memory:\n--- in-memory\n%s\n--- streamed\n%s",
					spec, mem.String(), stream.String())
			}
		}
	}
	// A bad range spec through the streaming path is a *SpecError.
	raw := encodeJSONL(t, explainMeta(), explainEvents())
	_, err := ExplainJSONL(bytes.NewReader(raw), "class=1 period=3-1")
	var spec *SpecError
	if !errors.As(err, &spec) {
		t.Fatalf("reversed range: got %v, want *SpecError", err)
	}
}

func TestExplainJSONLSpecError(t *testing.T) {
	raw := encodeJSONL(t, explainMeta(), explainEvents())
	_, err := ExplainJSONL(bytes.NewReader(raw), "class=9 period=1")
	var spec *SpecError
	if !errors.As(err, &spec) {
		t.Fatalf("bad spec: got %v, want *SpecError", err)
	}
	// A corrupt trace is NOT a spec error (qtrace exits 1, not 2).
	_, err = ExplainJSONL(strings.NewReader("{\"type\":\"bogus\"}\n"), "class=2 period=1")
	if err == nil || errors.As(err, &spec) {
		t.Fatalf("corrupt trace: got %v, want non-spec error", err)
	}
}
