// Package checkpoint writes and reads crash-consistent snapshot files.
//
// A checkpoint file is a small binary container:
//
//	magic   "QSCKPT\n" (7 bytes)
//	version uint32 (big-endian)
//	length  uint64 (big-endian) — payload byte count
//	crc32   uint32 (big-endian, Castagnoli) — checksum of the payload
//	payload gob-encoded snapshot
//
// Writes are atomic: the container is written to a temp file in the
// target directory, fsynced, renamed over the final name, and the
// directory fsynced — a crash at any instant leaves either the previous
// complete file set or the new one, never a torn file under a final
// name. Reads verify the magic, version, length, and checksum; Latest
// skips corrupt files with a warning instead of failing, so a run
// resumes from the newest checkpoint that survived the crash.
//
// The package is deliberately ignorant of what a snapshot contains: the
// payload is an opaque value the caller registers with encoding/gob.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Version identifies the container format.
const Version = 1

var magic = []byte("QSCKPT\n")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FileName returns the canonical checkpoint file name for a boundary
// index. Names embed the index zero-padded so lexicographic and numeric
// order agree.
func FileName(index int) string {
	return fmt.Sprintf("ckpt-%08d.bin", index)
}

// parseIndex extracts the boundary index from a canonical file name.
func parseIndex(name string) (int, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".bin") {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".bin"))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Write atomically writes a checkpoint for the given boundary index into
// dir, creating the directory if needed. payload is gob-encoded; the
// caller must use a concrete type registered consistently between writer
// and reader.
func Write(dir string, index int, payload any) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(payload); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(magic)
	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[0:4], Version)
	binary.BigEndian.PutUint64(hdr[4:12], uint64(body.Len()))
	binary.BigEndian.PutUint32(hdr[12:16], crc32.Checksum(body.Bytes(), castagnoli))
	buf.Write(hdr[:])
	buf.Write(body.Bytes())

	final := filepath.Join(dir, FileName(index))
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { os.Remove(tmpName) }
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best-effort: persist the rename itself
		d.Close()
	}
	return nil
}

// Read opens and verifies one checkpoint file, decoding its payload into
// out (a pointer to the registered concrete type).
func Read(path string, out any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if len(data) < len(magic)+16 {
		return fmt.Errorf("checkpoint: %s: truncated header", path)
	}
	if !bytes.Equal(data[:len(magic)], magic) {
		return fmt.Errorf("checkpoint: %s: bad magic", path)
	}
	hdr := data[len(magic) : len(magic)+16]
	if v := binary.BigEndian.Uint32(hdr[0:4]); v != Version {
		return fmt.Errorf("checkpoint: %s: unsupported version %d", path, v)
	}
	payload := data[len(magic)+16:]
	if want := binary.BigEndian.Uint64(hdr[4:12]); uint64(len(payload)) != want {
		return fmt.Errorf("checkpoint: %s: payload is %d bytes, header says %d", path, len(payload), want)
	}
	if sum := crc32.Checksum(payload, castagnoli); sum != binary.BigEndian.Uint32(hdr[12:16]) {
		return fmt.Errorf("checkpoint: %s: checksum mismatch", path)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(out); err != nil {
		return fmt.Errorf("checkpoint: %s: decode: %w", path, err)
	}
	return nil
}

// Latest finds the newest valid checkpoint in dir, decoding it into out
// and returning its boundary index. Files that fail verification are
// skipped with a warning on warnw (stderr in the CLIs) — a torn or
// corrupt newest file falls back to the one before it. ok is false when
// no valid checkpoint exists.
func Latest(dir string, out any, warnw io.Writer) (index int, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, false, fmt.Errorf("checkpoint: %w", err)
	}
	var indices []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n, valid := parseIndex(e.Name()); valid {
			indices = append(indices, n)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(indices)))
	for _, n := range indices {
		path := filepath.Join(dir, FileName(n))
		if rerr := Read(path, out); rerr != nil {
			if warnw != nil {
				fmt.Fprintf(warnw, "warning: skipping %v\n", rerr)
			}
			continue
		}
		return n, true, nil
	}
	return 0, false, nil
}
