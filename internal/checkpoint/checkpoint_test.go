package checkpoint

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Name  string
	Ticks []float64
	Index int
}

func samplePayload(i int) payload {
	return payload{Name: "run", Ticks: []float64{1.5, 2.25, 3}, Index: i}
}

func TestWriteReadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	want := samplePayload(7)
	if err := Write(dir, 7, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := Read(filepath.Join(dir, FileName(7)), &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || got.Index != want.Index || len(got.Ticks) != len(want.Ticks) {
		t.Fatalf("roundtrip mismatch: %+v != %+v", got, want)
	}
}

func TestWriteLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := Write(dir, 1, samplePayload(1)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != FileName(1) {
		t.Fatalf("directory not clean after write: %v", entries)
	}
}

// corruptAt rewrites one checkpoint file through fn.
func corruptAt(t *testing.T, path string, fn func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	if err := Write(dir, 3, samplePayload(3)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, FileName(3))

	cases := []struct {
		name    string
		corrupt func([]byte) []byte
		wantErr string
	}{
		{"truncated header", func(d []byte) []byte { return d[:5] }, "truncated header"},
		{"bad magic", func(d []byte) []byte {
			out := append([]byte(nil), d...)
			out[0] = 'X'
			return out
		}, "bad magic"},
		{"future version", func(d []byte) []byte {
			out := append([]byte(nil), d...)
			binary.BigEndian.PutUint32(out[len(magic):], Version+1)
			return out
		}, "unsupported version"},
		{"short payload", func(d []byte) []byte { return d[:len(d)-3] }, "header says"},
		{"flipped payload byte", func(d []byte) []byte {
			out := append([]byte(nil), d...)
			out[len(out)-1] ^= 0xff
			return out
		}, "checksum mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := Write(dir, 3, samplePayload(3)); err != nil {
				t.Fatal(err)
			}
			corruptAt(t, path, tc.corrupt)
			var got payload
			err := Read(path, &got)
			if err == nil {
				t.Fatal("corrupt file accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestLatestSkipsCorruptAndFallsBack(t *testing.T) {
	dir := t.TempDir()
	for i := 1; i <= 3; i++ {
		if err := Write(dir, i, samplePayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the newest file mid-payload, as a crash during a non-atomic
	// write would have.
	corruptAt(t, filepath.Join(dir, FileName(3)), func(d []byte) []byte { return d[:len(d)-2] })

	var got payload
	var warn bytes.Buffer
	idx, ok, err := Latest(dir, &got, &warn)
	if err != nil || !ok {
		t.Fatalf("Latest: ok=%v err=%v", ok, err)
	}
	if idx != 2 || got.Index != 2 {
		t.Fatalf("resumed from %d (payload %d), want 2", idx, got.Index)
	}
	if !strings.Contains(warn.String(), "skipping") {
		t.Errorf("no warning for the corrupt file: %q", warn.String())
	}
}

// TestLatestSkipsTruncatedMidPayload pins the crash shape a torn write
// leaves behind: the newest file cut off partway through its payload
// (header intact, length field promising more bytes than exist). Latest
// must warn, skip it, and hand back the older valid snapshot.
func TestLatestSkipsTruncatedMidPayload(t *testing.T) {
	dir := t.TempDir()
	for i := 1; i <= 2; i++ {
		if err := Write(dir, i, samplePayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, FileName(2))
	corruptAt(t, path, func(d []byte) []byte {
		cut := len(magic) + 16 + (len(d)-len(magic)-16)/2
		return d[:cut]
	})

	var got payload
	var warn bytes.Buffer
	idx, ok, err := Latest(dir, &got, &warn)
	if err != nil || !ok {
		t.Fatalf("Latest: ok=%v err=%v", ok, err)
	}
	if idx != 1 || got.Index != 1 {
		t.Fatalf("resumed from %d (payload %d), want 1", idx, got.Index)
	}
	if !strings.Contains(warn.String(), "skipping") || !strings.Contains(warn.String(), FileName(2)) {
		t.Errorf("warning should name the truncated file: %q", warn.String())
	}
}

func TestLatestEmptyDir(t *testing.T) {
	var got payload
	if _, ok, err := Latest(t.TempDir(), &got, nil); ok || err != nil {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	if _, _, err := Latest(filepath.Join(t.TempDir(), "missing"), &got, nil); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestFileNameOrdering(t *testing.T) {
	if FileName(9) >= FileName(10) || FileName(99) >= FileName(100) {
		t.Fatal("file names do not sort numerically")
	}
	for name, want := range map[string]int{"ckpt-00000042.bin": 42, "ckpt-0.bin": 0} {
		if n, ok := parseIndex(name); !ok || n != want {
			t.Errorf("parseIndex(%q) = %d, %v", name, n, ok)
		}
	}
	for _, name := range []string{"ckpt-.bin", "ckpt--1.bin", "other.bin", "ckpt-1.txt", ".ckpt-1.bin.tmp"} {
		if _, ok := parseIndex(name); ok {
			t.Errorf("parseIndex accepted %q", name)
		}
	}
}
