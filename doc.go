// Package repro is a from-scratch Go reproduction of "Adapting Mixed
// Workloads to Meet SLOs in Autonomic DBMSs" (Niu, Martin, Powley, Bird,
// Horman; ICDE 2007).
//
// The system under study — the Query Scheduler — lives in internal/core;
// every substrate it depends on (a simulated DB2-like engine, a Query
// Patroller substitute, an optimizer cost model, TPC-H-like and
// TPC-C-like workloads) is implemented in the sibling internal packages.
// The benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation; see DESIGN.md for the system inventory and EXPERIMENTS.md
// for paper-vs-measured results.
package repro
