# Tier-1 verification is `make check` (fmt + build + vet + lint + tests);
# `make race` adds the race detector over the whole tree, including the
# parallel experiment pool (see internal/experiment/parallel.go).
# `make lint` runs qlint, the determinism & simulation-invariant analyzer
# (cmd/qlint; checks: wallclock, globalrand, maporder, goroutine,
# floateq, poolsafety, ckptcover, hotalloc — see DESIGN.md "Lint
# invariants"). scripts/check.sh bundles all of it for CI.

GO ?= go

.PHONY: build test vet lint race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/qlint ./...

test:
	$(GO) test ./...

# The race detector multiplies runtime ~10x; -short skips the slowest
# full-fidelity experiment tests while still racing the worker pool,
# the determinism sweeps, and every kernel test. Use RACEFLAGS= to run
# the complete suite under race.
RACEFLAGS ?= -short
race:
	$(GO) test -race $(RACEFLAGS) -timeout 30m ./...

# `make bench` runs the whole suite once with -benchmem and records the
# results as BENCH_qsim.json (see scripts/bench.sh for BENCH/BENCHTIME/OUT
# overrides and README "Benchmark trajectory" for the JSON format).
bench:
	./scripts/bench.sh

check:
	./scripts/check.sh
