// Quickstart: build the simulated DBMS, attach the Query Scheduler, drive
// a small mixed workload for one virtual hour, and check the SLOs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/patroller"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/workload"
)

func main() {
	// 1. A virtual clock and the simulated DBMS (DB2-like: 2 CPUs, a
	//    SCSI array, contention past a multiprogramming knee).
	clock := simclock.New()
	eng := engine.New(engine.DefaultConfig(), clock)

	// 2. The two databases: TPC-H-like (OLAP) and TPC-C-like (OLTP),
	//    costed by the optimizer model in timerons.
	model := optimizer.DefaultModel()
	olap := workload.NewSet(optimizer.New(model, workload.TPCHCatalog()), workload.TPCHTemplates())
	oltp := workload.NewSet(optimizer.New(model, workload.TPCCCatalog()), workload.TPCCTemplates())

	// 3. Three service classes with goals and business importance.
	classes := workload.PaperClasses()

	// 4. Interactive clients (zero think time), constant intensity:
	//    4 + 4 OLAP clients, 20 OLTP clients, for two 30-minute periods.
	pool := workload.NewPool(eng)
	src := rng.New(42)
	sched := workload.Schedule{
		PeriodSeconds: 1800,
		Clients: []map[engine.ClassID]int{
			{1: 4, 2: 4, 3: 20},
			{1: 4, 2: 4, 3: 20},
		},
	}
	for _, c := range classes {
		set := olap
		if c.Kind == workload.OLTP {
			set = oltp
		}
		pool.AddClients(c, set, sched.MaxClients()[c.ID], src)
	}
	collector := metrics.NewCollector(eng, classes, sched)

	// 5. Query Patroller intercepts the OLAP classes; the Query
	//    Scheduler plans cost limits and dispatches releases. The OLTP
	//    class is observed through the snapshot monitor and controlled
	//    indirectly.
	pat := patroller.New(eng, 1, 2)
	qs, err := core.New(core.DefaultConfig(), eng, pat, classes,
		func() []engine.ClientID { return pool.ActiveClients(3) })
	if err != nil {
		panic(err)
	}
	qs.Start()

	// 6. Run one virtual hour (finishes in well under a second).
	sched.Install(clock, pool, nil)
	clock.RunUntil(sched.Duration())

	// 7. Report.
	fmt.Println("After one virtual hour under Query Scheduler control:")
	for _, c := range classes {
		v, ok := collector.Metric(1, c.ID)
		status := "met"
		if !ok {
			status = "n/a"
		} else if !c.Goal.Met(v) {
			status = "MISSED"
		}
		fmt.Printf("  %-8s goal %-18s measured %6.3f  -> %s\n", c.Name, c.Goal, v, status)
	}
	plan := qs.CostLimits()
	fmt.Printf("\nFinal scheduling plan (timerons of the %v system limit):\n",
		core.DefaultConfig().SystemCostLimit)
	for _, c := range classes {
		fmt.Printf("  %-8s %8.0f\n", c.Name, plan[c.ID])
	}
}
