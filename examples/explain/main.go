// Explain: inspect the optimizer cost model — the source of the timeron
// estimates every controller in this repository schedules by.
//
// Prints the access plan and cost breakdown of each TPC-H-like template
// (the moral equivalent of DB2's EXPLAIN), the resulting cost
// distribution, and the TPC-C-like transaction costs, with the 5%/15%/80%
// large/medium/small partition the DB2 QP baseline uses.
//
//	go run ./examples/explain
package main

import (
	"fmt"
	"sort"

	"repro/internal/optimizer"
	"repro/internal/patroller"
	"repro/internal/rng"
	"repro/internal/workload"
)

func main() {
	model := optimizer.DefaultModel()
	opt := optimizer.New(model, workload.TPCHCatalog())
	set := workload.NewSet(opt, workload.TPCHTemplates())

	fmt.Println("== TPC-H-like template costs (500 MB database) ==")
	type row struct {
		name     string
		timerons float64
		cpu, io  float64
		par      int
		exec     float64
	}
	var rows []row
	for i, t := range set.Templates() {
		c := set.BaseCost(i)
		tm := set.BaseTimerons(i)
		par := workload.ParallelismFor(tm)
		d := workload.DemandFor(c, par)
		rows = append(rows, row{t.Name, tm, c.CPUSeconds, c.IOSeconds, par, d.Work})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].timerons > rows[j].timerons })
	fmt.Printf("%-6s %10s %9s %9s %5s %10s\n", "query", "timerons", "cpu(s)", "io(s)", "par", "alone(s)")
	for _, r := range rows {
		fmt.Printf("%-6s %10.0f %9.1f %9.1f %5d %10.1f\n",
			r.name, r.timerons, r.cpu, r.io, r.par, r.exec)
	}

	// The QP baseline's size groups, derived the way an administrator
	// would: from a sample of historical costs.
	src := rng.New(99)
	var sample []float64
	for i := 0; i < 4096; i++ {
		sample = append(sample, set.Generate(src).Timerons)
	}
	th := patroller.ThresholdsFromSample(sample)
	fmt.Printf("\nDB2 QP size groups from a %d-query sample:\n", len(sample))
	fmt.Printf("  large  (top 5%%):  cost >= %8.0f timerons\n", th.LargeMin)
	fmt.Printf("  medium (next 15%%): cost >= %8.0f timerons\n", th.MediumMin)
	fmt.Printf("  small  (rest):     cost <  %8.0f timerons\n", th.MediumMin)

	// One full EXPLAIN, for the heaviest template.
	heaviest := rows[0].name
	for _, t := range set.Templates() {
		if t.Name == heaviest {
			fmt.Printf("\n== EXPLAIN %s ==\n%s", t.Name, opt.Explain(t.Plan))
		}
	}

	fmt.Println("\n== TPC-C-like transaction costs (50 warehouses) ==")
	coltp := optimizer.New(model, workload.TPCCCatalog())
	oltp := workload.NewSet(coltp, workload.TPCCTemplates())
	fmt.Printf("%-12s %9s %9s %9s %11s\n", "transaction", "weight", "timerons", "cpu(ms)", "io(ms)")
	for i, t := range oltp.Templates() {
		c := oltp.BaseCost(i)
		fmt.Printf("%-12s %8.0f%% %9.2f %9.2f %11.2f\n",
			t.Name, 100*t.Weight/92, oltp.BaseTimerons(i), c.CPUSeconds*1000, c.IOSeconds*1000)
	}
	fmt.Println("\nNote the four-orders-of-magnitude gap between OLAP and OLTP costs —")
	fmt.Println("why the paper controls OLAP by cost but cannot afford to intercept OLTP.")
}
