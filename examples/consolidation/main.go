// Consolidation: the scenario motivating the paper's introduction —
// several consolidated tenants with "diverse and dynamic resource demands
// and competing performance objectives" share one database server, and
// workload adaptation must keep each tenant's SLO.
//
// Three tenants share the box:
//
//   - "reporting": a batch-analytics tenant, low importance, modest
//     velocity goal;
//   - "dashboard": an interactive-BI tenant, medium importance, high
//     velocity goal (its users are watching);
//   - "checkout": the revenue-critical transactional tenant with a tight
//     response-time SLO and the highest importance.
//
// Midway through the run the reporting tenant launches a burst of heavy
// queries (month-end close). Watch the Query Scheduler strip resources
// from reporting — and only reporting — to keep checkout and dashboard on
// goal.
//
//	go run ./examples/consolidation
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/patroller"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/workload"
)

func main() {
	clock := simclock.New()
	eng := engine.New(engine.DefaultConfig(), clock)

	model := optimizer.DefaultModel()
	olapSet := workload.NewSet(optimizer.New(model, workload.TPCHCatalog()), workload.TPCHTemplates())
	oltpSet := workload.NewSet(optimizer.New(model, workload.TPCCCatalog()), workload.TPCCTemplates())

	reporting := &workload.Class{ID: 1, Name: "reporting", Kind: workload.OLAP,
		Goal: workload.Goal{Metric: workload.Velocity, Target: 0.30}, Importance: 1}
	dashboard := &workload.Class{ID: 2, Name: "dashboard", Kind: workload.OLAP,
		Goal: workload.Goal{Metric: workload.Velocity, Target: 0.70}, Importance: 2}
	checkout := &workload.Class{ID: 3, Name: "checkout", Kind: workload.OLTP,
		Goal: workload.Goal{Metric: workload.AvgResponseTime, Target: 0.30}, Importance: 3}
	classes := []*workload.Class{reporting, dashboard, checkout}

	// Six 15-minute periods; the month-end burst hits reporting in
	// periods 3-4 (client count triples).
	sched := workload.Schedule{
		PeriodSeconds: 900,
		Clients: []map[engine.ClassID]int{
			{1: 2, 2: 3, 3: 18},
			{1: 2, 2: 3, 3: 18},
			{1: 6, 2: 3, 3: 18}, // month-end close begins
			{1: 6, 2: 3, 3: 18},
			{1: 2, 2: 3, 3: 18},
			{1: 2, 2: 3, 3: 18},
		},
	}

	pool := workload.NewPool(eng)
	src := rng.New(7)
	for _, c := range classes {
		set := olapSet
		if c.Kind == workload.OLTP {
			set = oltpSet
		}
		pool.AddClients(c, set, sched.MaxClients()[c.ID], src)
	}
	collector := metrics.NewCollector(eng, classes, sched)

	pat := patroller.New(eng, reporting.ID, dashboard.ID)
	qs, err := core.New(core.DefaultConfig(), eng, pat, classes,
		func() []engine.ClientID { return pool.ActiveClients(checkout.ID) })
	if err != nil {
		panic(err)
	}
	qs.Start()

	sched.Install(clock, pool, nil)
	clock.RunUntil(sched.Duration())

	fmt.Println("Consolidated tenants under Query Scheduler control")
	fmt.Println("(burst: reporting runs month-end close in periods 3-4)")
	fmt.Printf("\n%8s %12s %12s %12s   %s\n", "period", "reporting", "dashboard", "checkout", "cost limits (rep/dash/chk)")
	limits := perPeriodLimits(qs, sched, classes)
	for p := 0; p < sched.Periods(); p++ {
		row := fmt.Sprintf("%8d", p+1)
		for _, c := range classes {
			v, ok := collector.Metric(p, c.ID)
			mark := " "
			if ok && !c.Goal.Met(v) {
				mark = "*"
			}
			row += fmt.Sprintf(" %11.3f%s", v, mark)
		}
		row += fmt.Sprintf("   %6.0f /%6.0f /%6.0f",
			limits[0][p], limits[1][p], limits[2][p])
		fmt.Println(row)
	}
	fmt.Println("\n(* = SLO missed; velocity for OLAP tenants, avg RT seconds for checkout)")

	fmt.Println("\nGoal satisfaction across the run:")
	for _, c := range classes {
		fmt.Printf("  %-10s %3.0f%%\n", c.Name, 100*collector.GoalSatisfaction(c.ID))
	}
}

// perPeriodLimits averages the plan history into per-period means.
func perPeriodLimits(qs *core.QueryScheduler, sched workload.Schedule,
	classes []*workload.Class) [][]float64 {

	out := make([][]float64, len(classes))
	counts := make([][]int, len(classes))
	for i := range out {
		out[i] = make([]float64, sched.Periods())
		counts[i] = make([]int, sched.Periods())
	}
	for _, rec := range qs.History() {
		p := sched.PeriodAt(rec.Time)
		for i, c := range classes {
			out[i][p] += rec.Limits[c.ID]
			counts[i][p]++
		}
	}
	for i := range out {
		for p := range out[i] {
			if counts[i][p] > 0 {
				out[i][p] /= float64(counts[i][p])
			}
		}
	}
	return out
}
