// Saturation: the calibration step that picks the system cost limit.
//
// The paper fixes the sum of all class cost limits to a *system cost
// limit* "determined experimentally by plotting the curve of the
// throughput versus the system cost limit to ensure the system running in
// a healthy state or under-saturated". This example regenerates that
// curve for the simulated testbed and marks the chosen operating point.
//
//	go run ./examples/saturation
package main

import (
	"fmt"
	"os"

	"repro/internal/experiment"
)

func main() {
	cfg := experiment.DefaultSaturationConfig()
	cal := experiment.FindSystemCostLimit(cfg)
	experiment.WriteSaturation(os.Stdout, cal.Points)

	fmt.Printf("\nPeak throughput:       %.0f queries/hour\n", cal.PeakThroughput)
	fmt.Printf("Healthy plateau:       %.0f - %.0f timerons\n", cal.PlateauLow, cal.PlateauHigh)
	fmt.Printf("Autonomic suggestion:  %.0f timerons\n", cal.Recommended)
	fmt.Printf("Committed limit:       %d timerons (the paper's 30,000)\n",
		experiment.SystemCostLimit)
	if float64(experiment.SystemCostLimit) < cal.PlateauLow || float64(experiment.SystemCostLimit) > cal.PlateauHigh {
		fmt.Println("WARNING: committed limit is off the measured plateau; recalibrate.")
	}
}
