// Direct control: the paper's future-work direction, runnable.
//
// "The most effective way to manage performance of OLTP workload is to
// directly control it. One approach is to implement the control mechanism
// inside the DBMS itself."
//
// This example holds the paper's peak intensity (25 OLTP clients plus two
// OLAP classes) and compares four strategies: no class control, indirect
// admission control (the Query Scheduler), direct in-DBMS weighted
// sharing (the wlm controller), and both combined — then shows the direct
// controller's weight trajectory as it converges.
//
//	go run ./examples/directcontrol
package main

import (
	"fmt"
	"os"

	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/report"
	"repro/internal/wlm"
)

func main() {
	cfg := experiment.DefaultDirectControlConfig()
	results := experiment.RunDirectControl(cfg)
	experiment.WriteDirectControl(os.Stdout, cfg, results)

	fmt.Println("\nConvergence of the direct controller's OLTP share weight:")
	trajectory := weightTrajectory(cfg)
	chart := report.Chart{
		Title:  "wlm weight and measured OLTP RT (one control record per 30s)",
		XLabel: "control interval",
		Series: []report.Series{
			{Name: "weight", Values: trajectory.weights},
			{Name: "RT x100 (s)", Values: trajectory.rts},
		},
	}
	fmt.Print(chart.Render())
	fmt.Printf("\nFinal weight %.1f holds the OLTP class at %.0f ms against the 250 ms goal.\n",
		trajectory.weights[len(trajectory.weights)-1],
		trajectory.rts[len(trajectory.rts)-1]*10)
}

type trajectory struct {
	weights []float64
	rts     []float64 // scaled x100 to share an axis with the weight
}

// weightTrajectory reruns the direct-only strategy and extracts the
// controller history for plotting.
func weightTrajectory(cfg experiment.DirectControlConfig) trajectory {
	sched := experiment.ConstantSchedule(cfg.Window, cfg.Window, map[engine.ClassID]int{
		1: cfg.OLAPClients, 2: cfg.OLAPClients, 3: cfg.OLTPClients,
	})
	rig := experiment.NewRig(cfg.Seed, sched)
	oltp := rig.OLTPClass()
	ctl, err := wlm.New(wlm.DefaultConfig(), rig.Eng, oltp.ID, oltp.Goal.Target,
		func() []engine.ClientID { return rig.Pool.ActiveClients(oltp.ID) })
	if err != nil {
		panic(err)
	}
	ctl.Start()
	rig.Run()

	var tr trajectory
	hist := ctl.History()
	// Keep the chart readable: at most ~80 points.
	stride := len(hist)/80 + 1
	for i := 0; i < len(hist); i += stride {
		tr.weights = append(tr.weights, hist[i].Weight)
		tr.rts = append(tr.rts, hist[i].MeanRT*100)
	}
	return tr
}
