// Baselines: the paper's comparison in one table — no class control vs.
// static DB2 QP priority control vs. the Query Scheduler, on a compressed
// version of the Figure 3 mixed workload.
//
//	go run ./examples/baselines
package main

import (
	"fmt"

	"repro/internal/experiment"
	"repro/internal/workload"
)

// compressedSchedule reproduces the Figure 3 intensity pattern with
// 10-minute periods so the example finishes quickly.
func compressedSchedule() workload.Schedule {
	full := workload.PaperSchedule()
	full.PeriodSeconds = 600
	return full
}

func main() {
	sched := compressedSchedule()
	fmt.Printf("Mixed workload, %d periods x %.0f min (compressed Figure 3 schedule)\n\n",
		sched.Periods(), sched.PeriodSeconds/60)

	modes := []experiment.Mode{
		experiment.NoControl,
		experiment.QPPriority,
		experiment.QueryScheduler,
	}
	results := make([]*experiment.MixedResult, len(modes))
	for i, mode := range modes {
		results[i] = experiment.RunMixed(experiment.MixedConfig{
			Mode:  mode,
			Sched: sched,
			Seed:  1,
		})
	}

	classes := results[0].Classes
	fmt.Printf("%-28s", "goal satisfaction")
	for _, mode := range modes {
		fmt.Printf(" %16s", mode)
	}
	fmt.Println()
	for ci, c := range classes {
		fmt.Printf("%-28s", fmt.Sprintf("%s (%s)", c.Name, c.Goal))
		for mi := range modes {
			fmt.Printf(" %15.0f%%", 100*results[mi].Satisfaction[ci])
		}
		fmt.Println()
	}

	// The paper's stress case: OLTP response time in the heaviest
	// periods (3, 6, 9, ...) where 25 OLTP clients are active.
	fmt.Printf("\n%-28s", "OLTP heavy-period mean RT")
	for mi := range modes {
		res := results[mi]
		var sum float64
		var n int
		for p := 2; p < res.Periods; p += 3 {
			if res.Measurable[2][p] {
				sum += res.Metric[2][p]
				n++
			}
		}
		fmt.Printf(" %14.0fms", sum/float64(n)*1000)
	}
	fmt.Println()

	// Differentiation: how often class 2 (higher goal and importance)
	// outperforms class 1.
	fmt.Printf("%-28s", "class2 >= class1 velocity")
	for mi := range modes {
		res := results[mi]
		better, comparable := 0, 0
		for p := 0; p < res.Periods; p++ {
			if res.Measurable[0][p] && res.Measurable[1][p] {
				comparable++
				if res.Metric[1][p] >= res.Metric[0][p] {
					better++
				}
			}
		}
		fmt.Printf(" %10d of %2d", better, comparable)
	}
	fmt.Println()
}
