// Benchmarks regenerating every table and figure in the paper's
// evaluation section, plus micro-benchmarks of the core components and
// ablation benches for the design decisions called out in DESIGN.md.
//
// Run a single figure with, e.g.:
//
//	go test -bench=BenchmarkFig6 -benchtime=1x
//
// Each experiment bench reports domain metrics (goal satisfaction, mean
// response times) via b.ReportMetric, so the paper's headline numbers
// appear directly in the benchmark output. The printed tables themselves
// come from cmd/qsim.
package repro

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/optimizer"
	"repro/internal/patroller"
	"repro/internal/rng"
	"repro/internal/router"
	"repro/internal/simclock"
	"repro/internal/solver"
	"repro/internal/utility"
	"repro/internal/workload"
)

// reportMixed attaches per-class goal satisfaction to the benchmark line.
func reportMixed(b *testing.B, res *experiment.MixedResult) {
	b.Helper()
	b.ReportMetric(res.Satisfaction[0], "class1-goal%")
	b.ReportMetric(res.Satisfaction[1], "class2-goal%")
	b.ReportMetric(res.Satisfaction[2], "class3-goal%")
	// Mean OLTP response time over the heavy periods (the paper's
	// stress case: periods 3, 6, 9, 12, 15, 18).
	var sum float64
	var n int
	for p := 2; p < res.Periods; p += 3 {
		if res.Measurable[2][p] {
			sum += res.Metric[2][p]
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n)*1000, "oltp-heavy-ms")
	}
}

// BenchmarkSystemCostLimit regenerates the calibration curve (throughput
// vs. system cost limit) that motivates the 30,000-timeron operating
// point (paper Section 2 / ref [4]).
func BenchmarkSystemCostLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.DefaultSaturationConfig()
		points := experiment.RunSaturation(cfg)
		// Report the plateau throughput at the chosen operating point.
		for _, p := range points {
			if p.Limit == experiment.SystemCostLimit {
				b.ReportMetric(p.QueriesPerHour, "queries/hour@30k")
			}
		}
	}
}

// BenchmarkFig2 regenerates Figure 2: OLTP average response time vs. the
// OLAP cost limit for the paper's four client mixes.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves := experiment.RunFig2(experiment.DefaultFig2Config())
		// Report the dynamic range of the (30 OLTP, 8 OLAP) curve.
		for _, c := range curves {
			if c.OLTPClients == 30 && c.OLAPClients == 8 {
				b.ReportMetric(c.MeanRT[0]*1000, "rt-low-limit-ms")
				b.ReportMetric(c.MeanRT[len(c.MeanRT)-1]*1000, "rt-high-limit-ms")
			}
		}
	}
}

// BenchmarkFig4 regenerates Figure 4: the mixed workload with no class
// control (system cost limit only).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunMixed(experiment.DefaultMixedConfig(experiment.NoControl))
		reportMixed(b, res)
	}
}

// BenchmarkFig5 regenerates Figure 5: static DB2 QP control with class
// priorities.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunMixed(experiment.DefaultMixedConfig(experiment.QPPriority))
		reportMixed(b, res)
	}
}

// BenchmarkFig5NoPriority runs the paper's QP-without-priority variant,
// which the paper reports as indistinguishable from no control.
func BenchmarkFig5NoPriority(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunMixed(experiment.DefaultMixedConfig(experiment.QPNoPriority))
		reportMixed(b, res)
	}
}

// BenchmarkFig6 regenerates Figure 6: dynamic Query Scheduler control.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunMixed(experiment.DefaultMixedConfig(experiment.QueryScheduler))
		reportMixed(b, res)
	}
}

// BenchmarkFig7 regenerates Figure 7: the per-period class cost limits
// chosen by the Query Scheduler (same run as Figure 6; reported here as
// the OLTP class's share in heavy vs. light periods).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunMixed(experiment.DefaultMixedConfig(experiment.QueryScheduler))
		oltp := res.CostLimits[2]
		var heavy, light float64
		for p := 0; p < res.Periods; p += 3 {
			light += oltp[p] / 6
		}
		for p := 2; p < res.Periods; p += 3 {
			heavy += oltp[p] / 6
		}
		b.ReportMetric(heavy, "oltp-limit-heavy")
		b.ReportMetric(light, "oltp-limit-light")
	}
}

// BenchmarkInterceptionOverhead regenerates the Section 3 argument: the
// per-query interception cost dwarfs sub-second OLTP execution, so the
// OLTP class must be controlled indirectly.
func BenchmarkInterceptionOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunInterceptionOverhead(20, 0.025, 1, 1)
		b.ReportMetric(res.DirectMeanRT/res.UnmanagedMeanRT, "slowdown-x")
	}
}

// BenchmarkDetection regenerates the workload-detection accuracy scores
// (E10): precision/recall of the CUSUM shift detector against the true
// Figure 3 period boundaries.
func BenchmarkDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := experiment.RunDetection(experiment.DefaultDetectionConfig())
		var matched, detected, truth int
		for _, r := range results {
			matched += r.Matched
			detected += r.Detected
			truth += r.TrueShifts
		}
		if detected > 0 {
			b.ReportMetric(float64(matched)/float64(detected), "precision")
		}
		if truth > 0 {
			b.ReportMetric(float64(matched)/float64(truth), "recall")
		}
	}
}

// BenchmarkDirectControl regenerates the future-work comparison (E9):
// indirect admission control vs. direct in-DBMS weighted sharing of the
// OLTP class under sustained peak load.
func BenchmarkDirectControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := experiment.RunDirectControl(experiment.DefaultDirectControlConfig())
		for _, r := range results {
			switch r.Strategy {
			case "indirect (QS admission)":
				b.ReportMetric(r.OLTPMeanRT*1000, "indirect-rt-ms")
			case "direct (in-DBMS shares)":
				b.ReportMetric(r.OLTPMeanRT*1000, "direct-rt-ms")
				b.ReportMetric(r.OLAPPerHour, "direct-olap-qph")
			}
		}
	}
}

// --- Ablation benches (design decisions from DESIGN.md §5) ---

func ablationConfig(mutate func(*core.Config)) experiment.MixedConfig {
	cfg := experiment.DefaultMixedConfig(experiment.QueryScheduler)
	qs := core.DefaultConfig()
	qs.SystemCostLimit = experiment.SystemCostLimit
	mutate(&qs)
	cfg.QS = &qs
	return cfg
}

// BenchmarkAblationGridSolver swaps the greedy coordinate-exchange solver
// for the exhaustive grid solver.
func BenchmarkAblationGridSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunMixed(ablationConfig(func(c *core.Config) {
			c.Solver = solver.Grid{}
		}))
		reportMixed(b, res)
	}
}

// BenchmarkAblationStarvationGuard enables the dispatcher's oversized-
// query release rule.
func BenchmarkAblationStarvationGuard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunMixed(ablationConfig(func(c *core.Config) {
			c.StarvationGuard = true
		}))
		reportMixed(b, res)
	}
}

// BenchmarkAblationCoarseSnapshots samples the snapshot monitor every 60s
// instead of 10s — the paper's "must not be too large" accuracy warning.
func BenchmarkAblationCoarseSnapshots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunMixed(ablationConfig(func(c *core.Config) {
			c.SnapshotInterval = 60
		}))
		reportMixed(b, res)
	}
}

// BenchmarkAblationShortRegressionWindow fits the OLTP model over 4
// intervals instead of 16.
func BenchmarkAblationShortRegressionWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunMixed(ablationConfig(func(c *core.Config) {
			c.OLTP.Window = 4
		}))
		reportMixed(b, res)
	}
}

// BenchmarkAblationSlowControlLoop re-plans every 5 minutes instead of
// every minute.
func BenchmarkAblationSlowControlLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunMixed(ablationConfig(func(c *core.Config) {
			c.ControlInterval = 300
		}))
		reportMixed(b, res)
	}
}

// BenchmarkAblationThroughputModel swaps the paper's linear OLTP model
// for the saturation-aware throughput model (future work, DESIGN.md §5).
func BenchmarkAblationThroughputModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunMixed(ablationConfig(func(c *core.Config) {
			c.OLTPModel = core.ThroughputOLTPModel
		}))
		reportMixed(b, res)
	}
}

// BenchmarkAblationFeedForward lets the planner use the workload
// detector's demand forecasts instead of reacting one interval late.
func BenchmarkAblationFeedForward(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunMixed(ablationConfig(func(c *core.Config) {
			c.FeedForward = true
		}))
		reportMixed(b, res)
	}
}

// --- Sweep-level benchmarks of the parallel experiment layer ---

// benchSaturationConfig is a scaled-down saturation sweep (8 limits,
// 10-minute windows) sized so serial-vs-parallel wall-clock is measurable
// in one benchtime=1x run.
func benchSaturationConfig(parallel int) experiment.SaturationConfig {
	var limits []float64
	for l := 4000.0; l <= 32000; l += 4000 {
		limits = append(limits, l)
	}
	return experiment.SaturationConfig{
		Limits: limits, OLAPClients: 12, Window: 600, Seed: 1, Parallel: parallel,
	}
}

// BenchmarkSaturationSweep measures the same sweep serially and fanned
// across the worker pool; on an N-core machine the parallel variants
// should approach N-times speedup (each swept limit is an independent
// simulation). Compare with:
//
//	go test -bench=BenchmarkSaturationSweep -benchtime=2x
func BenchmarkSaturationSweep(b *testing.B) {
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parallel=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiment.RunSaturation(benchSaturationConfig(workers))
			}
		})
	}
}

// BenchmarkReplicatedSweep measures multi-seed replication throughput via
// the worker pool (the "tighter confidence intervals" enabler).
func BenchmarkReplicatedSweep(b *testing.B) {
	sched := workload.PaperSchedule()
	seeds := experiment.DefaultSeeds(4)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallel=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiment.RunReplicated(experiment.NoControl, sched, seeds, workers)
			}
		})
	}
}

// BenchmarkFaultMatrixQuick runs the CI-sized fault matrix (five fault
// scenarios x mitigations off/on, one-hour schedule each) on the worker
// pool — the end-to-end cost of the fault-injection and mitigation layer.
func BenchmarkFaultMatrixQuick(b *testing.B) {
	cfg := experiment.QuickFaultMatrixConfig()
	cfg.Parallel = 4
	for i := 0; i < b.N; i++ {
		cells := experiment.RunFaultMatrix(cfg)
		var retried uint64
		for _, c := range cells {
			retried += c.Retried
		}
		b.ReportMetric(float64(retried), "retries")
	}
}

// BenchmarkCheckpointOverhead measures the cost of crash-consistent
// checkpointing on the paper's Query Scheduler run: the same simulation
// with checkpoints off, at every 100th control boundary (the recommended
// cadence — expected well under 5% overhead), and at every boundary (the
// worst case). Compare with:
//
//	go test -bench=BenchmarkCheckpointOverhead -benchtime=3x
func BenchmarkCheckpointOverhead(b *testing.B) {
	for _, every := range []int{0, 100, 1} {
		b.Run(fmt.Sprintf("every=%d", every), func(b *testing.B) {
			dir := b.TempDir()
			cfg := experiment.DefaultMixedConfig(experiment.QueryScheduler)
			if every > 0 {
				cfg.CheckpointEvery = every
				cfg.CheckpointDir = dir
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := experiment.RunMixed(cfg)
				reportMixed(b, res)
			}
		})
	}
}

// --- Micro-benchmarks of the components themselves ---

// BenchmarkClockThroughput measures the simclock kernel's event hot path:
// one self-rescheduling event per iteration (schedule + heap push + pop +
// fire), the pattern every client arrival and completion follows. The
// events/sec metric and allocs/op are the before/after numbers CHANGES.md
// records.
func BenchmarkClockThroughput(b *testing.B) {
	clock := simclock.New()
	var tick func()
	tick = func() { clock.After(1, tick) }
	clock.After(1, tick)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		clock.Step()
	}
	if d := time.Since(start).Seconds(); d > 0 {
		b.ReportMetric(float64(b.N)/d, "events/sec")
	}
}

// BenchmarkClockDeepQueue is BenchmarkClockThroughput with 1024 pending
// events, so sift costs at realistic queue depths are visible.
func BenchmarkClockDeepQueue(b *testing.B) {
	clock := simclock.New()
	var tick func()
	tick = func() { clock.After(1+float64(clock.Pending()%7), tick) }
	for i := 0; i < 1024; i++ {
		clock.After(float64(i%13)+1, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Step()
	}
}

// BenchmarkClockCancelChurn measures the cancellable path: arm + cancel +
// re-arm, the engine's completion-event pattern.
func BenchmarkClockCancelChurn(b *testing.B) {
	clock := simclock.New()
	fn := func() {}
	// Background events so cancellation sifts against a non-trivial heap.
	for i := 0; i < 256; i++ {
		clock.At(float64(1+i%9), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := clock.AfterCancellable(0.5, fn)
		clock.Cancel(id)
	}
}

// BenchmarkEngineHotPath measures the engine's submit→reschedule→complete
// cycle including the clock kernel underneath — the inner loop of every
// experiment. allocs/op is the headline: the value-heap kernel plus the
// hoisted completion closure keep the simulator's per-event garbage flat.
func BenchmarkEngineHotPath(b *testing.B) {
	clock := simclock.New()
	eng := engine.New(engine.DefaultConfig(), clock)
	var submit func(engine.ClientID)
	submit = func(c engine.ClientID) {
		eng.Submit(&engine.Query{
			Client: c,
			Demand: engine.Demand{Work: 0.01, CPURate: 1, IORate: 0.2},
		})
	}
	eng.OnDone(func(q *engine.Query) { submit(q.Client) })
	for c := engine.ClientID(0); c < 20; c++ {
		submit(c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Step()
	}
}

// BenchmarkEngineThroughput measures simulated-query completions per
// wall-clock second of the discrete-event engine.
func BenchmarkEngineThroughput(b *testing.B) {
	clock := simclock.New()
	eng := engine.New(engine.DefaultConfig(), clock)
	var submit func(engine.ClientID)
	submit = func(c engine.ClientID) {
		eng.Submit(&engine.Query{
			Client: c,
			Demand: engine.Demand{Work: 0.01, CPURate: 1, IORate: 0.2},
		})
	}
	eng.OnDone(func(q *engine.Query) { submit(q.Client) })
	for c := engine.ClientID(0); c < 20; c++ {
		submit(c)
	}
	b.ResetTimer()
	done := eng.Stats().Completed
	for i := 0; i < b.N; i++ {
		clock.RunUntil(clock.Now() + 1)
	}
	b.ReportMetric(float64(eng.Stats().Completed-done)/float64(b.N), "completions/op")
}

// BenchmarkSolverGreedy measures one planning cycle with the production
// solver over the paper's three classes.
func BenchmarkSolverGreedy(b *testing.B) {
	benchSolver(b, solver.Greedy{})
}

// BenchmarkSolverGrid measures one planning cycle with the exhaustive
// grid solver.
func BenchmarkSolverGrid(b *testing.B) {
	benchSolver(b, solver.Grid{})
}

func benchSolver(b *testing.B, s solver.Solver) {
	p := solver.Problem{
		Total: 30000,
		Step:  500,
		Classes: []solver.ClassSpec{
			{ID: 1, Utility: utility.NewVelocity(0.4, 1), Min: 500,
				Predict: func(l float64) float64 { return min(1, 0.7*l/10000) }},
			{ID: 2, Utility: utility.NewVelocity(0.6, 2), Min: 500,
				Predict: func(l float64) float64 { return min(1, 0.8*l/12000) }},
			{ID: 3, Utility: utility.NewResponseTime(0.25, 3),
				Predict: func(l float64) float64 { return max(0.05, 0.35-5e-6*l) }},
		},
	}
	start := solver.Plan{1: 10000, 2: 10000, 3: 10000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(p, start)
	}
}

// BenchmarkWorkloadGenerate measures OLAP instance generation.
func BenchmarkWorkloadGenerate(b *testing.B) {
	opt := optimizer.New(optimizer.DefaultModel(), workload.TPCHCatalog())
	set := workload.NewSet(opt, workload.TPCHTemplates())
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.Generate(src)
	}
}

// BenchmarkOptimizerCost measures plan costing against the catalog.
func BenchmarkOptimizerCost(b *testing.B) {
	opt := optimizer.New(optimizer.DefaultModel(), workload.TPCHCatalog())
	plans := workload.TPCHTemplates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Cost(plans[i%len(plans)].Plan)
	}
}

// BenchmarkPatrollerChurn measures intercept/release/complete cycles.
func BenchmarkPatrollerChurn(b *testing.B) {
	clock := simclock.New()
	eng := engine.New(engine.Config{CPUCapacity: 1000, IOCapacity: 1000}, clock)
	pat := patroller.New(eng, 1)
	pat.SetPolicy(patroller.SystemLimit{Limit: 1000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Submit(&engine.Query{Class: 1, Cost: 100,
			Demand: engine.Demand{Work: 0.001, CPURate: 1}})
		clock.RunUntil(clock.Now() + 0.01)
	}
}

// BenchmarkRouterRoute measures the routing tier's per-query decision:
// score three heterogeneous backends with the default policy, pick the
// argmax, and submit to the chosen engine, with engine churn underneath
// so the queue/load signals stay live. allocs/op is the headline — one
// alloc per op is the unpooled fleet query itself; the scoring and
// argmax must add none.
func BenchmarkRouterRoute(b *testing.B) {
	clock := simclock.New()
	specs := experiment.RoutingBackends()
	roster := make([]backend.Backend, len(specs))
	for i, spec := range specs {
		roster[i] = backend.New(i+1, spec, clock)
	}
	rt := router.New(roster, router.DefaultScorers())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := rt.AcquireQuery()
		q.Class = engine.ClassID(1 + i%3)
		q.Cost = 100
		q.Demand = engine.Demand{Work: 0.001, CPURate: 1, IORate: 0.2}
		rt.Submit(q)
		clock.RunUntil(clock.Now() + 0.01)
	}
}

// BenchmarkRoutingFleet regenerates E14: the heterogeneous three-backend
// fleet under the routing tier and the hierarchical budget split. The
// reported share metrics are the router's verdict — the slow backend
// should hold well under a fair third of the routed queries.
func BenchmarkRoutingFleet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunFleet(experiment.RoutingMixedConfig())
		var total int64
		for _, n := range res.Routed {
			total += n
		}
		if total > 0 {
			b.ReportMetric(100*float64(res.Routed[0])/float64(total), "fast1-share%")
			b.ReportMetric(100*float64(res.Routed[2])/float64(total), "slow-share%")
		}
	}
}

// BenchmarkFleetFailover regenerates E15 (quick shape): three arms of
// the backend-crash drill — healthy baseline, failover + migration, and
// mitigation-off. The reported metrics are the acceptance verdict: the
// mitigated arm's critical-class retention vs baseline (bar: >= 90%)
// and the collapse of the unmitigated black-hole arm.
func BenchmarkFleetFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.RunFailover(experiment.FailoverConfig{Seed: 1, Quick: true})
		b.ReportMetric(100*r.Baseline.Attainment, "baseline-attain%")
		b.ReportMetric(100*r.Retention(r.Failover), "retention%")
		b.ReportMetric(100*r.NoMitig.Attainment, "nomitig-attain%")
	}
}

// BenchmarkMillionClients drives one million distinct streaming clients
// through a 24-sim-hour closed-loop OLTP run. A 25-client cohort rotates
// through the population every ~2.2 sim-seconds via SetActiveWindow, so
// every client in turn materializes, submits queries, and parks back to
// its 12-byte (rng cursor, submit count) record. The eager generator
// would build a million Client objects and rng streams up front; the
// streaming pool keeps resident state bounded by the live cohort, which
// is what lets the run fit in container memory.
func BenchmarkMillionClients(b *testing.B) {
	const (
		population = 1_000_000
		cohort     = 25
		simHours   = 24
	)
	slices := population / cohort
	span := simHours * 3600.0 / float64(slices)
	oltp := workload.PaperClasses()[2]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock := simclock.New()
		eng := engine.New(engine.DefaultConfig(), clock)
		opt := optimizer.New(optimizer.DefaultModel(), workload.TPCCCatalog())
		set := workload.NewSet(opt, workload.TPCCTemplates())
		pool := workload.NewPool(eng)
		pool.AddClientsStreaming(oltp, set, population, rng.New(7))
		for s := 0; s < slices; s++ {
			lo := s * cohort
			pool.SetActiveWindow(oltp.ID, lo, lo+cohort)
			clock.RunUntil(simclock.Time(s+1) * span)
		}
		// Drain: park the final cohort once its in-flight work completes.
		pool.SetActiveWindow(oltp.ID, population, population)
		clock.RunUntil(clock.Now() + 60)
		b.ReportMetric(float64(eng.Stats().Completed), "completions")
		b.ReportMetric(float64(pool.ActiveCount(oltp.ID)), "live-clients")
	}
}
