// Command qsweep sweeps one Query Scheduler parameter across a list of
// values and tabulates goal satisfaction on the paper's workload — the
// generalization of the fixed ablation benchmarks.
//
// Usage:
//
//	qsweep -param control-interval -values 30,60,120,300
//	qsweep -param system-cost-limit -values 20000,30000,40000 -seed 2
//	qsweep -param plan-step -values 250,500,1000,2000 -parallel 4
//	qsweep -param system-cost-limit -values 20000,40000 -backends 3
//
// Parameters: control-interval, snapshot-interval, plan-step,
// min-olap-limit, system-cost-limit, oltp-window.
//
// -backends N runs every swept value on a fleet of N identical
// backends behind the routing tier instead of a single engine.
//
// Each swept value is an independent simulation run; -parallel fans them
// across a worker pool (0 = GOMAXPROCS, 1 = serial). Rows print in value
// order with identical numbers for any worker count.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/patroller"
	"repro/internal/prof"
	"repro/internal/workload"
)

// sink is one run's buffered export file. Each swept value owns its sink,
// so concurrent sweep workers never share a writer.
type sink struct {
	f  *os.File
	bw *bufio.Writer
}

// newSink creates path, exiting on failure (before any runs start).
func newSink(path string) *sink {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return &sink{f: f, bw: bufio.NewWriterSize(f, 1<<20)}
}

// writer returns a nil interface for a nil sink (never a typed nil).
func (s *sink) writer() io.Writer {
	if s == nil {
		return nil
	}
	return s.bw
}

// finish flushes and closes, reporting the artifact path.
func (s *sink) finish() {
	if s == nil {
		return
	}
	if err := s.bw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := s.f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", s.f.Name())
}

// setters maps parameter names to config mutations.
var setters = map[string]func(*core.Config, float64) error{
	"control-interval": func(c *core.Config, v float64) error {
		c.ControlInterval = v
		return nil
	},
	"snapshot-interval": func(c *core.Config, v float64) error {
		c.SnapshotInterval = v
		return nil
	},
	"plan-step": func(c *core.Config, v float64) error {
		c.PlanStep = v
		return nil
	},
	"min-olap-limit": func(c *core.Config, v float64) error {
		c.MinOLAPLimit = v
		return nil
	},
	"system-cost-limit": func(c *core.Config, v float64) error {
		c.SystemCostLimit = v
		return nil
	},
	"oltp-window": func(c *core.Config, v float64) error {
		if v < 2 || math.Mod(v, 1) != 0 {
			return fmt.Errorf("oltp-window must be an integer >= 2")
		}
		c.OLTP.Window = int(v)
		return nil
	},
}

func main() {
	param := flag.String("param", "", "parameter to sweep (see -help)")
	values := flag.String("values", "", "comma-separated values")
	seed := flag.Uint64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 0, "worker goroutines for the sweep (0 = GOMAXPROCS, 1 = serial)")
	tracePrefix := flag.String("trace", "", "write each run's JSONL event trace to <prefix><value>.jsonl (inspect with qtrace)")
	metricsPrefix := flag.String("metrics", "", "write each run's metrics exposition to <prefix><value>.prom")
	decisionsPrefix := flag.String("decisions", "", "write each run's decision audit log to <prefix><value>.jsonl (inspect with qreport)")
	pprofMode := flag.String("pprof", "", "collect a runtime profile of this invocation: cpu or heap")
	pprofFile := flag.String("pprof-file", "", "profile output path (default qsweep-cpu.pprof / qsweep-heap.pprof)")
	faultsFile := flag.String("faults", "", "inject the deterministic fault plan from this JSON file into every swept run (see internal/fault)")
	mitigate := flag.Bool("mitigate", false, "arm the mitigation stack (timeout+retry, plan hold, slope fallback) in every swept run")
	checkpointEvery := flag.Int("checkpoint-every", 0, "write a crash-consistent checkpoint every N control boundaries into a per-value subdirectory of -checkpoint-dir")
	checkpointDir := flag.String("checkpoint-dir", "", "root directory for per-value checkpoint subdirectories")
	resume := flag.Bool("resume", false, "resume swept values that left a checkpoint under -checkpoint-dir (values without one run fresh); pass the same -param/-values/-trace/-metrics as the interrupted sweep")
	backends := flag.Int("backends", 1, "run every swept value on a fleet of N identical backends behind the routing tier (1 = classic single engine)")
	flag.Parse()

	if (*checkpointEvery > 0 || *resume) && *checkpointDir == "" {
		fmt.Fprintln(os.Stderr, "-checkpoint-every/-resume require -checkpoint-dir")
		os.Exit(2)
	}
	if *backends < 1 {
		fmt.Fprintln(os.Stderr, "-backends must be at least 1")
		os.Exit(2)
	}
	profFile := *pprofFile
	if profFile == "" && *pprofMode != "" {
		profFile = "qsweep-" + *pprofMode + ".pprof"
	}
	profStop, err := prof.Start(*pprofMode, profFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	profDone := false
	stopProfile := func() {
		if profDone {
			return
		}
		profDone = true
		if err := profStop(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *pprofMode != "" {
			fmt.Fprintf(os.Stderr, "wrote %s\n", profFile)
		}
	}
	defer stopProfile()

	// Fault plans and the mitigation stack apply per backend on fleet
	// runs; the fleet rig validates backend-scoped fault targets itself.
	var fleetSpecs []backend.Spec
	if *backends > 1 {
		fleetSpecs = backend.DefaultSpecs(*backends)
	}

	var faults *fault.Plan
	if *faultsFile != "" {
		f, err := os.Open(*faultsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		plan, err := fault.ParseSpec(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		faults = &plan
	}

	setter, ok := setters[*param]
	if !ok {
		var names []string
		for n := range setters {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "unknown -param %q; choose one of: %s\n",
			*param, strings.Join(names, ", "))
		os.Exit(2)
	}
	var sweep []float64
	for _, raw := range strings.Split(*values, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad value %q: %v\n", raw, err)
			os.Exit(2)
		}
		sweep = append(sweep, v)
	}
	if len(sweep) == 0 {
		fmt.Fprintln(os.Stderr, "no -values given")
		os.Exit(2)
	}

	classes := workload.PaperClasses()
	fmt.Printf("Sweeping %s over the paper workload (seed %d)\n\n", *param, *seed)
	fmt.Printf("%14s", *param)
	for _, c := range classes {
		fmt.Printf(" %12s", c.Name+" %")
	}
	fmt.Printf(" %14s\n", "oltp-heavy(ms)")

	// Validate every value up front so a bad one aborts before any runs.
	cfgs := make([]core.Config, len(sweep))
	for i, v := range sweep {
		cfgs[i] = core.DefaultConfig()
		cfgs[i].SystemCostLimit = experiment.SystemCostLimit
		if *mitigate {
			// Overlay the degradation features, then let the swept
			// parameter take effect on top.
			cfgs[i].Degradation = core.Degradation{HoldPlanOnDropout: true, MaxHeldTicks: 5}
			cfgs[i].OLTP.FallbackToLastFit = true
		}
		if err := setter(&cfgs[i], v); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	// One export sink per swept value, created before the (possibly
	// parallel) runs so failures abort early and workers never share one.
	// A value being resumed keeps its interrupted trace file untouched:
	// ResumeMixed reopens it and rewinds to the checkpointed offset, so no
	// sink is created for it (the metrics exposition is rewritten wholesale
	// after the run either way).
	traceSinks := make([]*sink, len(sweep))
	metricsSinks := make([]*sink, len(sweep))
	decisionsSinks := make([]*sink, len(sweep))
	tracePaths := make([]string, len(sweep))
	decisionsPaths := make([]string, len(sweep))
	ckptDirs := make([]string, len(sweep))
	resuming := make([]bool, len(sweep))
	for i, v := range sweep {
		val := strconv.FormatFloat(v, 'g', -1, 64)
		if *checkpointDir != "" {
			ckptDirs[i] = filepath.Join(*checkpointDir, fmt.Sprintf("%s-%s", *param, val))
		}
		resuming[i] = *resume && experiment.HasCheckpoint(ckptDirs[i])
		if *tracePrefix != "" {
			tracePaths[i] = *tracePrefix + val + ".jsonl"
			if !resuming[i] {
				traceSinks[i] = newSink(tracePaths[i])
			}
		}
		// The decision log rewinds on resume exactly like the trace.
		if *decisionsPrefix != "" {
			decisionsPaths[i] = *decisionsPrefix + val + ".jsonl"
			if !resuming[i] {
				decisionsSinks[i] = newSink(decisionsPaths[i])
			}
		}
		if *metricsPrefix != "" {
			metricsSinks[i] = newSink(*metricsPrefix + val + ".prom")
		}
	}
	var retry *patroller.RetryPolicy
	if *mitigate {
		rp := experiment.DefaultRetryPolicy()
		retry = &rp
	}
	// Per-value errors from resume land here (each worker owns its index,
	// so the slice is race-free under the parallel runner).
	errs := make([]error, len(sweep))
	results := experiment.Map(*parallel, sweep, func(v float64, i int) *experiment.MixedResult {
		if resuming[i] {
			res, err := experiment.ResumeMixed(experiment.ResumeOptions{
				Dir:             ckptDirs[i],
				TracePath:       tracePaths[i],
				DecisionsPath:   decisionsPaths[i],
				Metrics:         metricsSinks[i].writer(),
				CheckpointEvery: *checkpointEvery,
				Warn:            os.Stderr,
			})
			errs[i] = err
			return res
		}
		return experiment.RunMixed(experiment.MixedConfig{
			Mode:            experiment.QueryScheduler,
			Sched:           workload.PaperSchedule(),
			Seed:            *seed,
			QS:              &cfgs[i],
			Experiment:      fmt.Sprintf("qsweep %s=%g", *param, v),
			Trace:           traceSinks[i].writer(),
			Metrics:         metricsSinks[i].writer(),
			Decisions:       decisionsSinks[i].writer(),
			Faults:          faults,
			Retry:           retry,
			CheckpointEvery: *checkpointEvery,
			CheckpointDir:   ckptDirs[i],
			Backends:        fleetSpecs,
		})
	})
	// Flush every sink before reporting: a crashed value must not cost the
	// other values their buffered exports, and its own partial trace has
	// to reach disk for -resume to rewind.
	for i := range sweep {
		traceSinks[i].finish()
		decisionsSinks[i].finish()
		metricsSinks[i].finish()
	}
	for i, v := range sweep {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "%s=%g: %v\n", *param, v, errs[i])
			os.Exit(1)
		}
		res := results[i]
		if res.Crashed {
			fmt.Fprintf(os.Stderr, "%s=%g: run crashed mid-simulation; re-run with -resume to finish it\n", *param, v)
			stopProfile() // os.Exit skips the deferred stop
			os.Exit(3)
		}
		if res.ExportErr != nil {
			fmt.Fprintln(os.Stderr, res.ExportErr)
			os.Exit(1)
		}
		fmt.Printf("%14g", v)
		for ci := range classes {
			fmt.Printf(" %11.0f%%", 100*res.Satisfaction[ci])
		}
		var heavy float64
		var n int
		for p := 2; p < res.Periods; p += 3 {
			if res.Measurable[2][p] {
				heavy += res.Metric[2][p]
				n++
			}
		}
		if n > 0 {
			fmt.Printf(" %14.0f", heavy/float64(n)*1000)
		}
		fmt.Println()
	}
}
