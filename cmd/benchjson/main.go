// Command benchjson converts `go test -bench` text output into the
// machine-readable BENCH_qsim.json perf trajectory (see README "Benchmark
// trajectory"). scripts/bench.sh is the normal entry point; it pipes the
// benchmark run through this tool and supplies the timestamp and
// toolchain version as flags (this tool itself reads no wall clock, per
// the qlint wallclock invariant).
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... |
//	    benchjson -date 2026-08-05T00:00:00Z -go "$(go version)" -o BENCH_qsim.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// File is the BENCH_qsim.json shape.
type File struct {
	// Format versions the JSON layout.
	Format int `json:"format"`
	// Generated is the RFC 3339 UTC timestamp supplied by the caller.
	Generated string `json:"generated"`
	// Go is the `go version` line of the toolchain that ran the suite.
	Go string `json:"go"`
	// Env echoes the goos/goarch/pkg/cpu header lines of the output.
	Env map[string]string `json:"env"`
	// Benchmarks lists one entry per result line, in output order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one `BenchmarkName-P  N  <value unit>...` result line.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix or the
	// trailing -GOMAXPROCS suffix; sub-benchmarks keep their /path.
	Name string `json:"name"`
	// Procs is the -GOMAXPROCS suffix (1 when the line has none).
	Procs int `json:"procs"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every "<value> <unit>" pair on the
	// line: ns/op, B/op, allocs/op, and all b.ReportMetric units
	// (class1-goal%, events/sec, ...). encoding/json sorts the keys, so
	// identical runs serialize identically.
	Metrics map[string]float64 `json:"metrics"`
	// Delta, when a previous trajectory file is available, maps unit →
	// relative change versus the same-named entry: (new-old)/old, so
	// -0.25 reads "25% less than last run". Units or benchmarks absent
	// from the previous file carry no delta — new benchmarks and new
	// ReportMetric keys are expected as the suite grows, never an error.
	Delta map[string]float64 `json:"delta,omitempty"`
}

// addDeltas annotates cur's benchmarks with their relative change vs the
// same-named (name, procs) entry of a previous trajectory file.
func addDeltas(cur, prev *File) {
	type key struct {
		name  string
		procs int
	}
	byName := make(map[key]Benchmark, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		byName[key{b.Name, b.Procs}] = b
	}
	for i := range cur.Benchmarks {
		b := &cur.Benchmarks[i]
		p, ok := byName[key{b.Name, b.Procs}]
		if !ok {
			continue
		}
		for unit, v := range b.Metrics {
			old, ok := p.Metrics[unit]
			if !ok || old == 0 {
				continue
			}
			if b.Delta == nil {
				b.Delta = make(map[string]float64)
			}
			b.Delta[unit] = (v - old) / old
		}
	}
}

// Parse reads `go test -bench` output. Non-benchmark lines (PASS, ok,
// test logs) are skipped; header lines fill Env.
func Parse(r io.Reader) (*File, error) {
	f := &File{Format: 1, Env: map[string]string{}, Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				f.Env[key] = v
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "name N value unit [value unit]..."; a bare
		// "BenchmarkFoo" line (b.Run header) has no fields to parse.
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		b, err := parseResult(fields)
		if err != nil {
			return nil, fmt.Errorf("benchjson: %q: %w", line, err)
		}
		f.Benchmarks = append(f.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: read: %w", err)
	}
	return f, nil
}

func parseResult(fields []string) (Benchmark, error) {
	b := Benchmark{
		Name:    strings.TrimPrefix(fields[0], "Benchmark"),
		Procs:   1,
		Metrics: make(map[string]float64, (len(fields)-2)/2),
	}
	// Split the trailing -GOMAXPROCS suffix, if numeric.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil && p > 0 {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return b, fmt.Errorf("iterations: %w", err)
	}
	b.Iterations = n
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return b, fmt.Errorf("metric %s: %w", fields[i+1], err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

// loadPrev reads a previous trajectory file, returning nil and a reason
// when there is no usable baseline: the file is missing (first run),
// empty (interrupted write), unparseable, or carries no benchmarks.
func loadPrev(path string) (*File, string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Sprintf("no baseline at %s", path)
	}
	if len(strings.TrimSpace(string(data))) == 0 {
		return nil, fmt.Sprintf("baseline %s is empty", path)
	}
	var pf File
	if err := json.Unmarshal(data, &pf); err != nil {
		return nil, fmt.Sprintf("baseline %s unparseable: %v", path, err)
	}
	if len(pf.Benchmarks) == 0 {
		return nil, fmt.Sprintf("baseline %s has no benchmarks", path)
	}
	return &pf, ""
}

// notice reports a non-fatal condition: as a GitHub Actions annotation
// when running in CI (so it surfaces on the workflow summary without
// failing the job), as a plain stderr line otherwise.
func notice(msg string) {
	if os.Getenv("GITHUB_ACTIONS") == "true" {
		fmt.Printf("::notice title=benchjson::%s\n", msg)
		return
	}
	fmt.Fprintln(os.Stderr, "benchjson:", msg)
}

func main() {
	date := flag.String("date", "", "RFC 3339 UTC timestamp to record (supplied by scripts/bench.sh)")
	goVersion := flag.String("go", "", "`go version` line to record")
	out := flag.String("o", "", "output path (default stdout)")
	prev := flag.String("prev", "", "previous trajectory JSON to diff against (default: the existing -o file)")
	flag.Parse()

	f, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(f.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	f.Generated = *date
	f.Go = *goVersion

	// Diff against the previous trajectory before overwriting it. A
	// missing, empty, or unparseable baseline is never fatal — a fresh
	// checkout has no history, and a truncated file from an interrupted
	// run must not block recording a new trajectory point. The deltas are
	// simply skipped (the Delta sections only appear when a baseline
	// exists) and the reason is reported as a non-fatal annotation.
	prevPath := *prev
	if prevPath == "" {
		prevPath = *out
	}
	if prevPath != "" {
		if pf, reason := loadPrev(prevPath); pf != nil {
			addDeltas(f, pf)
		} else {
			notice(fmt.Sprintf("skipping deltas: %s", reason))
		}
	}

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
