package main

import (
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkClockThroughput 	       1	      1030 ns/op	   2890173 events/sec	       0 B/op	       0 allocs/op
BenchmarkFig6-8          	       1	9503327740 ns/op	         0.8889 class1-goal%	         0.8889 class2-goal%	         1.000 class3-goal%
BenchmarkSaturationSweep/parallel=4-8         	       1	  86061569 ns/op
BenchmarkSaturationSweep
PASS
ok  	repro	12.907s
?   	repro/cmd/qsim	[no test files]
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if f.Env["goos"] != "linux" || f.Env["cpu"] == "" {
		t.Errorf("env = %v", f.Env)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %+v", len(f.Benchmarks), f.Benchmarks)
	}
	b0 := f.Benchmarks[0]
	if b0.Name != "ClockThroughput" || b0.Procs != 1 || b0.Iterations != 1 {
		t.Errorf("b0 = %+v", b0)
	}
	if b0.Metrics["ns/op"] != 1030 || b0.Metrics["events/sec"] != 2890173 ||
		b0.Metrics["allocs/op"] != 0 {
		t.Errorf("b0 metrics = %v", b0.Metrics)
	}
	b1 := f.Benchmarks[1]
	if b1.Name != "Fig6" || b1.Procs != 8 {
		t.Errorf("b1 = %+v", b1)
	}
	if b1.Metrics["class3-goal%"] != 1.0 {
		t.Errorf("b1 metrics = %v", b1.Metrics)
	}
	b2 := f.Benchmarks[2]
	if b2.Name != "SaturationSweep/parallel=4" || b2.Procs != 8 {
		t.Errorf("b2 = %+v", b2)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkBad 	 x 	 12 ns/op 	 3 B/op\n"))
	if err == nil {
		t.Error("bad iteration count: want error")
	}
	_, err = Parse(strings.NewReader("BenchmarkBad 	 1 	 oops ns/op 	 3 B/op\n"))
	if err == nil {
		t.Error("bad metric value: want error")
	}
}

func TestAddDeltas(t *testing.T) {
	cur, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	prev := &File{Benchmarks: []Benchmark{
		{Name: "ClockThroughput", Procs: 1, Metrics: map[string]float64{
			"ns/op": 2060, "events/sec": 1445086.5, "B/op": 128}},
		{Name: "Fig6", Procs: 8, Metrics: map[string]float64{"ns/op": 9503327740}},
	}}
	addDeltas(cur, prev)

	b0 := cur.Benchmarks[0]
	if d := b0.Delta["ns/op"]; d != -0.5 {
		t.Errorf("ns/op delta = %v, want -0.5", d)
	}
	if d := b0.Delta["events/sec"]; d != 1.0 {
		t.Errorf("events/sec delta = %v, want 1.0", d)
	}
	// allocs/op is 0 in prev (absent) and B/op was 128→0: 0-valued old
	// entries and units the old run lacked produce no delta.
	if _, ok := b0.Delta["allocs/op"]; ok {
		t.Errorf("allocs/op delta present: %v", b0.Delta)
	}
	if d, ok := b0.Delta["B/op"]; !ok || d != -1.0 {
		t.Errorf("B/op delta = %v,%v, want -1", d, ok)
	}
	b1 := cur.Benchmarks[1]
	if d := b1.Delta["ns/op"]; d != 0 {
		t.Errorf("unchanged ns/op delta = %v, want 0", d)
	}
	// Metrics new in this run (goal%) have no previous value: no delta.
	if _, ok := b1.Delta["class1-goal%"]; ok {
		t.Errorf("new metric got a delta: %v", b1.Delta)
	}
	// SaturationSweep has no previous entry at all.
	if cur.Benchmarks[2].Delta != nil {
		t.Errorf("new benchmark got deltas: %v", cur.Benchmarks[2].Delta)
	}
}

func TestLoadPrevToleratesBadBaselines(t *testing.T) {
	dir := t.TempDir()
	if pf, reason := loadPrev(dir + "/absent.json"); pf != nil || reason == "" {
		t.Errorf("missing file: %v %q", pf, reason)
	}
	empty := dir + "/empty.json"
	if err := os.WriteFile(empty, []byte("  \n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if pf, reason := loadPrev(empty); pf != nil || !strings.Contains(reason, "empty") {
		t.Errorf("empty file: %v %q", pf, reason)
	}
	corrupt := dir + "/corrupt.json"
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if pf, reason := loadPrev(corrupt); pf != nil || !strings.Contains(reason, "unparseable") {
		t.Errorf("corrupt file: %v %q", pf, reason)
	}
	hollow := dir + "/hollow.json"
	if err := os.WriteFile(hollow, []byte(`{"format":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if pf, reason := loadPrev(hollow); pf != nil || !strings.Contains(reason, "no benchmarks") {
		t.Errorf("hollow file: %v %q", pf, reason)
	}

	good := dir + "/good.json"
	body := `{"format":1,"benchmarks":[{"name":"X","procs":1,"iterations":1,"metrics":{"ns/op":5}}]}`
	if err := os.WriteFile(good, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	pf, reason := loadPrev(good)
	if pf == nil || reason != "" || len(pf.Benchmarks) != 1 {
		t.Errorf("good file: %+v %q", pf, reason)
	}
}
