// Command qlint is the repository's determinism and simulation-invariant
// analyzer: a from-scratch static checker on the standard library's
// go/parser + go/ast + go/types (no x/tools) that loads every package in
// the module, type-checks it, and enforces the invariants the experiment
// harness's bit-identical replay depends on.
//
// Usage:
//
//	qlint ./...              # lint the whole module (default)
//	qlint -list              # describe the registered checks
//	qlint -checks floateq,maporder ./...
//	qlint -json ./...        # machine-readable findings on stdout
//	qlint -github ./...      # GitHub Actions workflow annotations
//	qlint path/to/dir        # lint one directory as a package
//
// Findings print as file:line:col: check: message and make qlint exit 1.
// -json emits them as a JSON array of {file,line,col,check,message}
// objects (an empty array when clean), and -github emits one
// ::error workflow command per finding so CI surfaces them inline on
// the pull request diff.
// A finding is silenced with a trailing (or directly preceding) comment
//
//	//lint:ignore <check> <reason>
//
// where the reason is mandatory; unused or malformed directives are
// findings themselves. See DESIGN.md ("Lint invariants") for what each
// check guards and why.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list registered checks and exit")
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	chdir := flag.String("C", "", "change to this directory before loading")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array of {file,line,col,check,message}")
	githubOut := flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qlint [flags] [./... | dir]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := lint.DefaultChecks()
	if *list {
		for _, c := range all {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return
	}
	checks := all
	if *checksFlag != "" {
		checks = nil
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			c := lint.CheckByName(all, name)
			if c == nil {
				fatalf("qlint: unknown check %q (try -list)", name)
			}
			checks = append(checks, c)
		}
	}

	if *chdir != "" {
		if err := os.Chdir(*chdir); err != nil {
			fatalf("qlint: %v", err)
		}
	}

	target := "./..."
	switch flag.NArg() {
	case 0:
	case 1:
		target = flag.Arg(0)
	default:
		fatalf("qlint: at most one target (got %q)", flag.Args())
	}

	var (
		res *lint.Result
		err error
	)
	if target == "./..." || target == "all" {
		root, rootErr := lint.FindModuleRoot(".")
		if rootErr != nil {
			fatalf("qlint: %v", rootErr)
		}
		res, err = lint.LoadModule(root)
	} else {
		res, err = lint.LoadDir(target, filepath.Base(target))
	}
	if err != nil {
		fatalf("qlint: %v", err)
	}

	diags := lint.NewRunner(checks, lint.DefaultConfig()).Run(res)
	cwd, _ := os.Getwd()
	relName := func(name string) string {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				return rel
			}
		}
		return name
	}
	switch {
	case *jsonOut:
		type finding struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Check   string `json:"check"`
			Message string `json:"message"`
		}
		out := []finding{} // never null, even when clean
		for _, d := range diags {
			out = append(out, finding{relName(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fatalf("qlint: %v", err)
		}
	case *githubOut:
		for _, d := range diags {
			// Workflow-command grammar: property values escape , and %,
			// the message escapes newlines too.
			esc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
			prop := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ",", "%2C", ":", "%3A")
			fmt.Printf("::error file=%s,line=%d,col=%d,title=qlint %s::%s\n",
				prop.Replace(relName(d.Pos.Filename)), d.Pos.Line, d.Pos.Column,
				prop.Replace(d.Check), esc.Replace(d.Message))
		}
	default:
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", relName(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "qlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
