// Command qsim runs the paper's experiments and prints their tables.
//
// Usage:
//
//	qsim -exp fig4            # per-period performance, no class control
//	qsim -exp fig6 -seed 7    # Query Scheduler run with another seed
//	qsim -exp fig6 -backends 3  # same run on a 3-backend fleet
//	qsim -exp routing         # E14: heterogeneous fleet + routing tier
//	qsim -exp failover        # E15: kill 1-of-3 backends mid-run
//	qsim -exp all             # everything, in paper order
//	qsim -exp fig2 -parallel 8  # fan the sweep across 8 workers
//
// Sweep-style experiments (syslimit, fig2, replicated, direct, overhead,
// detection-replicated, ablations) consist of many independent simulation
// runs; -parallel fans them across a bounded worker pool. Results are
// bit-identical for any worker count — each run owns its clock, engine,
// and RNG (see internal/experiment/parallel.go for the isolation
// invariant).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/backend"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/prof"
	"repro/internal/trace"
	"repro/internal/workload"
)

// loadFaults parses a JSON fault plan (nil when path is empty).
func loadFaults(path string) *fault.Plan {
	if path == "" {
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	plan, err := fault.ParseSpec(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return &plan
}

// fileSink is a buffered file target for trace/metrics export. The trace
// sink in particular receives one small write per event, so buffering is
// what keeps exporting a 24-hour run cheap.
type fileSink struct {
	f  *os.File
	bw *bufio.Writer
}

// openSink creates path (nil when path is empty).
func openSink(path string) *fileSink {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return &fileSink{f: f, bw: bufio.NewWriterSize(f, 1<<20)}
}

// writer returns the sink's io.Writer, or a nil interface for a nil sink
// (a typed-nil *fileSink inside an io.Writer would defeat nil checks).
func (s *fileSink) writer() io.Writer {
	if s == nil {
		return nil
	}
	return s.bw
}

// close flushes and closes, exiting on error: a silently truncated
// artifact is worse than a failed run.
func (s *fileSink) close() {
	if s == nil {
		return
	}
	if err := s.bw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := s.f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", s.f.Name())
}

func main() {
	exp := flag.String("exp", "all", "experiment: syslimit|fig2|fig3|fig4|fig5|fig6|fig7|overhead|direct|detection|detection-replicated|replicated|ablations|faultmatrix|crashrecovery|infeasible|routing|failover|all")
	backends := flag.Int("backends", 1, "number of identical backends behind the routing tier (Query Scheduler runs: -exp fig6|fig7); 1 = the classic single-engine rig, byte-identical to builds without a fleet")
	replications := flag.Int("seeds", 5, "number of seeds for -exp replicated / detection-replicated")
	seed := flag.Uint64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 0, "worker goroutines for independent runs within an experiment (0 = GOMAXPROCS, 1 = serial); results are identical for any value")
	chart := flag.Bool("chart", false, "draw figures as terminal line charts in addition to tables")
	scenario := flag.String("scenario", "", "run a custom JSON scenario file instead of a named experiment")
	csvDir := flag.String("csv", "", "also write each experiment's data as CSV files into this directory")
	traceFile := flag.String("trace", "", "write the run's lossless JSONL event trace to this file (mixed runs only: fig4|fig5|fig6|fig7 or -scenario; inspect with qtrace)")
	metricsFile := flag.String("metrics", "", "write the run's metrics as Prometheus text exposition to this file (mixed runs only, like -trace)")
	decisionsFile := flag.String("decisions", "", "write the control plane's decision audit log as JSONL to this file (Query Scheduler runs only: -exp fig6|fig7|infeasible or a query-scheduler -scenario; inspect with qreport)")
	faultsFile := flag.String("faults", "", "inject the deterministic fault plan from this JSON file (mixed runs and -exp faultmatrix; see internal/fault)")
	mitigate := flag.Bool("mitigate", false, "with -faults on a mixed run: arm the mitigation stack (timeout+retry, plan hold, slope fallback)")
	quick := flag.Bool("quick", false, "with -exp faultmatrix|failover: run the CI-smoke-sized schedule instead of the full one")
	traceRotate := flag.Int64("trace-rotate", 0, "rotate the -trace file once a segment exceeds this many bytes (0 = never); rotated segments move to <file>.1, .2, ... and each re-starts with the meta line")
	checkpointEvery := flag.Int("checkpoint-every", 0, "write a crash-consistent checkpoint every N control boundaries (single mixed runs only; requires -checkpoint-dir)")
	checkpointDir := flag.String("checkpoint-dir", "", "directory checkpoint files are written to")
	resumeDir := flag.String("resume", "", "resume an interrupted mixed run from this checkpoint directory; pass the interrupted run's -trace/-metrics/-decisions paths and the finished outputs match an uninterrupted run byte for byte")
	pprofMode := flag.String("pprof", "", "collect a runtime profile of this invocation: cpu or heap")
	pprofFile := flag.String("pprof-file", "", "profile output path (default qsim-cpu.pprof / qsim-heap.pprof)")
	flag.Parse()

	obsCapable := map[string]bool{"fig4": true, "fig5": true, "fig6": true, "fig7": true, "infeasible": true, "routing": true, "failover": true}
	decCapable := map[string]bool{"fig6": true, "fig7": true, "infeasible": true, "routing": true, "failover": true}
	if *backends < 1 {
		fmt.Fprintln(os.Stderr, "-backends must be at least 1")
		os.Exit(2)
	}
	if *backends > 1 && *exp != "fig6" && *exp != "fig7" {
		fmt.Fprintln(os.Stderr, "-backends applies to Query Scheduler runs: -exp fig6|fig7 (use -exp routing for the heterogeneous E14 fleet)")
		os.Exit(2)
	}
	if (*traceFile != "" || *metricsFile != "") && *scenario == "" && *resumeDir == "" && !obsCapable[*exp] {
		fmt.Fprintln(os.Stderr, "-trace/-metrics apply to a single mixed run: -exp fig4|fig5|fig6|fig7|infeasible or -scenario")
		os.Exit(2)
	}
	if *decisionsFile != "" && *scenario == "" && *resumeDir == "" && !decCapable[*exp] {
		fmt.Fprintln(os.Stderr, "-decisions applies to a single Query Scheduler run: -exp fig6|fig7|infeasible or a query-scheduler -scenario")
		os.Exit(2)
	}
	profFile := *pprofFile
	if profFile == "" && *pprofMode != "" {
		profFile = "qsim-" + *pprofMode + ".pprof"
	}
	profStop, err := prof.Start(*pprofMode, profFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	profDone := false
	stopProfile := func() {
		if profDone {
			return
		}
		profDone = true
		if err := profStop(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *pprofMode != "" {
			fmt.Fprintf(os.Stderr, "wrote %s\n", profFile)
		}
	}
	defer stopProfile()
	traceCompressed := strings.HasSuffix(*traceFile, ".gz")
	if *checkpointEvery > 0 {
		if *checkpointDir == "" && *resumeDir == "" {
			fmt.Fprintln(os.Stderr, "-checkpoint-every requires -checkpoint-dir")
			os.Exit(2)
		}
		if *scenario == "" && *resumeDir == "" && !obsCapable[*exp] {
			fmt.Fprintln(os.Stderr, "-checkpoint-every applies to a single mixed run: -exp fig4|fig5|fig6|fig7 or -scenario")
			os.Exit(2)
		}
	}
	if (*checkpointEvery > 0 || *resumeDir != "") && (*traceRotate > 0 || traceCompressed) {
		// Resume rewinds the trace file to a checkpointed byte offset;
		// rotation and compression destroy that stable offset.
		fmt.Fprintln(os.Stderr, "checkpointing requires a plain -trace file (no -trace-rotate, no .gz)")
		os.Exit(2)
	}

	// The trace sink handles optional gzip (.gz suffix) and rotation. On
	// -resume the interrupted run's trace file must NOT be truncated here:
	// ResumeMixed reopens it and rewinds to the checkpointed offset itself.
	var traceSink *trace.Sink
	if *traceFile != "" && *resumeDir == "" {
		s, err := trace.OpenSink(*traceFile, *traceRotate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		traceSink = s
	}
	traceWriter := func() io.Writer {
		if traceSink == nil {
			return nil // a typed-nil *trace.Sink would defeat nil checks
		}
		return traceSink
	}
	metricsSink := openSink(*metricsFile)
	// Like the trace file, the decision log must NOT be truncated on
	// -resume: ResumeMixed reopens it and rewinds to the checkpointed
	// offset itself.
	var decisionsSink *fileSink
	if *decisionsFile != "" && *resumeDir == "" {
		decisionsSink = openSink(*decisionsFile)
	}
	checkExport := func(res *experiment.MixedResult) {
		if res.ExportErr != nil {
			fmt.Fprintln(os.Stderr, res.ExportErr)
			os.Exit(1)
		}
	}
	closeSinks := func() {
		if traceSink != nil {
			if err := traceSink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *traceFile)
		}
		metricsSink.close()
		decisionsSink.close()
	}
	// A fault-plan crash ends the run mid-simulation: flush the partial
	// artifacts (resume rewinds the trace) and exit distinctly.
	exitIfCrashed := func(res *experiment.MixedResult) {
		if !res.Crashed {
			return
		}
		closeSinks()
		stopProfile() // os.Exit skips the deferred stop
		if *checkpointDir != "" {
			fmt.Fprintf(os.Stderr, "simulation crashed mid-run; resume with -resume %s\n", *checkpointDir)
		} else {
			fmt.Fprintln(os.Stderr, "simulation crashed mid-run (no checkpoints were enabled)")
		}
		os.Exit(3)
	}

	writeCSV := func(name, content string) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path := filepath.Join(*csvDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	out := os.Stdout
	run := func(name string) bool { return *exp == name || *exp == "all" }
	any := false
	faults := loadFaults(*faultsFile)

	writeMixedTables := func(name string, res *experiment.MixedResult) {
		experiment.WriteMixed(out, res)
		if res.CostLimits != nil {
			experiment.WriteCostLimits(out, res)
		}
		if *chart {
			experiment.WriteMixedCharts(out, res)
		}
		writeCSV(name+".csv", experiment.MixedCSV(res))
	}

	if *resumeDir != "" {
		res, err := experiment.ResumeMixed(experiment.ResumeOptions{
			Dir:             *resumeDir,
			TracePath:       *traceFile,
			DecisionsPath:   *decisionsFile,
			Metrics:         metricsSink.writer(),
			CheckpointEvery: *checkpointEvery,
			Warn:            os.Stderr,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exitIfCrashed(res)
		checkExport(res)
		writeMixedTables("resume", res)
		closeSinks()
		return
	}

	if *scenario != "" {
		f, err := os.Open(*scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sc, err := experiment.ParseScenario(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *seed != 1 {
			sc.Seed = *seed
		}
		if sc.Name != "" {
			fmt.Fprintf(out, "Scenario: %s\n", sc.Name)
		}
		sc.Trace = traceWriter()
		sc.Metrics = metricsSink.writer()
		sc.Decisions = decisionsSink.writer()
		sc.Faults = faults
		sc.CheckpointEvery = *checkpointEvery
		sc.CheckpointDir = *checkpointDir
		if *mitigate {
			if sc.Mode == experiment.QueryScheduler && sc.QS == nil {
				qc := experiment.MitigatedQSConfig()
				sc.QS = &qc
			}
			rp := experiment.DefaultRetryPolicy()
			sc.Retry = &rp
		}
		res := sc.Run()
		exitIfCrashed(res)
		checkExport(res)
		experiment.WriteMixed(out, res)
		if res.CostLimits != nil {
			experiment.WriteCostLimits(out, res)
		}
		if *chart {
			experiment.WriteMixedCharts(out, res)
		}
		closeSinks()
		return
	}

	if run("syslimit") {
		any = true
		cfg := experiment.DefaultSaturationConfig()
		cfg.Seed = *seed
		cfg.Parallel = *parallel
		points := experiment.RunSaturation(cfg)
		experiment.WriteSaturation(out, points)
		if *chart {
			experiment.WriteSaturationChart(out, points)
		}
		writeCSV("syslimit.csv", experiment.SaturationCSV(points))
		fmt.Fprintln(out)
	}
	if run("fig2") {
		any = true
		cfg := experiment.DefaultFig2Config()
		cfg.Seed = *seed
		cfg.Parallel = *parallel
		curves := experiment.RunFig2(cfg)
		experiment.WriteFig2(out, curves)
		if *chart {
			experiment.WriteFig2Charts(out, curves)
		}
		writeCSV("fig2.csv", experiment.Fig2CSV(curves))
		fmt.Fprintln(out)
	}
	if run("fig3") {
		any = true
		experiment.WriteSchedule(out, workload.PaperSchedule(), workload.PaperClasses())
		if *chart {
			experiment.WriteScheduleChart(out, workload.PaperSchedule(), workload.PaperClasses())
		}
		fmt.Fprintln(out)
	}
	mixed := func(mode experiment.Mode) *experiment.MixedResult {
		cfg := experiment.DefaultMixedConfig(mode)
		cfg.Seed = *seed
		cfg.Experiment = *exp
		cfg.Trace = traceWriter()
		cfg.Metrics = metricsSink.writer()
		cfg.Decisions = decisionsSink.writer()
		cfg.Faults = faults
		cfg.CheckpointEvery = *checkpointEvery
		cfg.CheckpointDir = *checkpointDir
		if *backends > 1 {
			// Fault plans and the retry stack are wired per backend in the
			// fleet rig; only backend-scoped fault targets are validated
			// there (a plan naming backend 5 on a 3-box fleet panics).
			cfg.Backends = backend.DefaultSpecs(*backends)
		}
		if *mitigate {
			if mode == experiment.QueryScheduler {
				qc := experiment.MitigatedQSConfig()
				cfg.QS = &qc
			}
			rp := experiment.DefaultRetryPolicy()
			cfg.Retry = &rp
		}
		res := experiment.RunMixed(cfg)
		exitIfCrashed(res)
		checkExport(res)
		if err := res.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return res
	}
	writeMixed := func(name string, res *experiment.MixedResult) {
		experiment.WriteMixed(out, res)
		if *chart {
			experiment.WriteMixedCharts(out, res)
		}
		writeCSV(name+".csv", experiment.MixedCSV(res))
		fmt.Fprintln(out)
	}
	if run("fig4") {
		any = true
		writeMixed("fig4", mixed(experiment.NoControl))
	}
	if run("fig5") {
		any = true
		writeMixed("fig5", mixed(experiment.QPPriority))
	}
	if run("fig6") || run("fig7") {
		any = true
		res := mixed(experiment.QueryScheduler)
		if run("fig6") {
			writeMixed("fig6", res)
		}
		if run("fig7") {
			experiment.WriteCostLimits(out, res)
			if *chart {
				experiment.WriteCostLimitCharts(out, res)
			}
			writeCSV("fig7.csv", experiment.CostLimitsCSV(res))
			fmt.Fprintln(out)
		}
	}
	if *exp == "infeasible" { // not part of "all": deliberately unmeetable goals
		any = true
		cfg := experiment.InfeasibleMixedConfig()
		cfg.Seed = *seed
		cfg.Trace = traceWriter()
		cfg.Metrics = metricsSink.writer()
		cfg.Decisions = decisionsSink.writer()
		cfg.Faults = faults
		cfg.CheckpointEvery = *checkpointEvery
		cfg.CheckpointDir = *checkpointDir
		if *mitigate {
			qc := experiment.MitigatedQSConfig()
			cfg.QS = &qc
			rp := experiment.DefaultRetryPolicy()
			cfg.Retry = &rp
		}
		res := experiment.RunMixed(cfg)
		exitIfCrashed(res)
		checkExport(res)
		if err := res.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		writeMixed("infeasible", res)
		experiment.WriteInfeasibility(out, res)
		fmt.Fprintln(out)
	}
	if *exp == "routing" { // not part of "all": the fleet is its own testbed
		any = true
		cfg := experiment.RoutingMixedConfig()
		cfg.Seed = *seed
		cfg.Trace = traceWriter()
		cfg.Metrics = metricsSink.writer()
		cfg.Decisions = decisionsSink.writer()
		cfg.CheckpointEvery = *checkpointEvery
		cfg.CheckpointDir = *checkpointDir
		cfg.Faults = faults
		if *mitigate {
			qc := experiment.MitigatedQSConfig()
			cfg.QS = &qc
			rp := experiment.DefaultRetryPolicy()
			cfg.Retry = &rp
		}
		res := experiment.RunFleet(cfg)
		exitIfCrashed(res.MixedResult)
		checkExport(res.MixedResult)
		if err := res.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		writeMixed("routing", res.MixedResult)
		experiment.WriteRouting(out, res)
		fmt.Fprintln(out)
	}
	if *exp == "failover" { // not part of "all": three full fleet runs
		any = true
		fcfg := experiment.FailoverConfig{
			Seed:            *seed,
			Quick:           *quick,
			Trace:           traceWriter(),
			Metrics:         metricsSink.writer(),
			Decisions:       decisionsSink.writer(),
			CheckpointEvery: *checkpointEvery,
			CheckpointDir:   *checkpointDir,
		}
		r := experiment.RunFailover(fcfg)
		checkExport(r.Failover.Result.MixedResult)
		experiment.WriteFailover(out, r)
		writeCSV("failover.csv", experiment.FailoverCSV(r))
		fmt.Fprintln(out)
	}
	if run("overhead") {
		any = true
		experiment.WriteInterception(out, experiment.RunInterceptionOverhead(20, 0.025, *seed, *parallel))
		fmt.Fprintln(out)
	}
	if *exp == "replicated" { // not part of "all": it reruns everything n times
		any = true
		sched := workload.PaperSchedule()
		seeds := experiment.DefaultSeeds(*replications)
		var reps []experiment.Replication
		for _, mode := range []experiment.Mode{
			experiment.NoControl, experiment.QPPriority, experiment.QueryScheduler,
		} {
			reps = append(reps, experiment.RunReplicated(mode, sched, seeds, *parallel))
		}
		experiment.WriteReplication(out, workload.PaperClasses(), reps)
		fmt.Fprintln(out)
	}
	if run("detection") {
		any = true
		dcfg := experiment.DefaultDetectionConfig()
		dcfg.Seed = *seed
		experiment.WriteDetection(out, experiment.RunDetection(dcfg))
		fmt.Fprintln(out)
	}
	if *exp == "detection-replicated" { // not part of "all": reruns detection n times
		any = true
		dcfg := experiment.DefaultDetectionConfig()
		results := experiment.RunDetectionReplicated(dcfg,
			experiment.DefaultSeeds(*replications), *parallel)
		fmt.Fprintf(out, "(counts summed over %d seeds)\n", *replications)
		experiment.WriteDetection(out, results)
		fmt.Fprintln(out)
	}
	if *exp == "ablations" { // not part of "all": eight full QS runs
		any = true
		specs := experiment.AblationSpecs()
		results := experiment.RunAblations(specs, workload.PaperSchedule(), *seed, *parallel)
		experiment.WriteAblations(out, specs, results)
		fmt.Fprintln(out)
	}
	if *exp == "faultmatrix" { // not part of "all": ten full QS runs
		any = true
		fmCfg := experiment.DefaultFaultMatrixConfig()
		if *quick {
			fmCfg = experiment.QuickFaultMatrixConfig()
		}
		fmCfg.Seed = *seed
		fmCfg.Parallel = *parallel
		if faults != nil {
			// A custom plan replaces the built-in scenario set; it still
			// runs both arms.
			fmCfg.Scenarios = []experiment.FaultScenario{{Name: "custom", Plan: *faults}}
		}
		cells := experiment.RunFaultMatrix(fmCfg)
		experiment.WriteFaultMatrix(out, cells)
		writeCSV("faultmatrix.csv", experiment.FaultMatrixCSV(cells))
		fmt.Fprintln(out)
	}
	if *exp == "crashrecovery" { // not part of "all": nine full QS runs
		any = true
		crCfg := experiment.DefaultCrashRecoveryConfig()
		crCfg.Seed = *seed
		crCfg.Parallel = *parallel
		if faults != nil {
			// A custom plan replaces the built-in one; its crash time is
			// still overwritten per cell.
			crCfg.Faults = *faults
		}
		cells := experiment.RunCrashRecovery(crCfg)
		experiment.WriteCrashRecovery(out, cells)
		writeCSV("crashrecovery.csv", experiment.CrashRecoveryCSV(cells))
		fmt.Fprintln(out)
		for _, c := range cells {
			if !c.Recovered() {
				os.Exit(1)
			}
		}
	}
	if run("direct") {
		any = true
		cfg := experiment.DefaultDirectControlConfig()
		cfg.Seed = *seed
		cfg.Parallel = *parallel
		experiment.WriteDirectControl(out, cfg, experiment.RunDirectControl(cfg))
		fmt.Fprintln(out)
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	closeSinks()
}
