// Command qtrace inspects JSONL traces exported by qsim/qsweep -trace.
//
// Usage:
//
//	qtrace trace.jsonl                             # header + event counts
//	qtrace -explain "class=B period=3" trace.jsonl # explain one cell
//
// The -explain spec names one class/period cell of the period tables:
// classes by numeric ID, letter (A = first class in the trace header), or
// name; periods 1-based as the tables print them. The explanation breaks
// the cell's response time into admission wait vs execution, draws the
// held-queue depth over the period, lists plan changes, and draws a
// per-query lifetime Gantt. All analysis lives in internal/trace.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	explain := flag.String("explain", "", `explain one cell, e.g. "class=B period=3"`)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qtrace [-explain \"class=X period=K\"] trace.jsonl")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Both views stream the trace — memory stays bounded by the answer
	// (the summary tallies, or one class's events), not the trace size.
	br := bufio.NewReaderSize(f, 1<<20)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	if *explain == "" {
		err := trace.SummarizeJSONL(out, br)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	ex, err := trace.ExplainJSONL(br, *explain)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		var spec *trace.SpecError
		if errors.As(err, &spec) {
			os.Exit(2)
		}
		os.Exit(1)
	}
	ex.Render(out)
}
