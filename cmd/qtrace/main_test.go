package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the test binary impersonate the CLI: with QTRACE_MAIN=1
// the process runs main() on its own arguments, so tests can assert the
// real exit codes the shell would see.
func TestMain(m *testing.M) {
	if os.Getenv("QTRACE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "QTRACE_MAIN=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return out.String(), errb.String(), code
}

// writeTrace hand-crafts a one-period trace export; the line format is
// pinned by the trace package's golden tests, so building it directly
// keeps this test free of a full simulation run.
func writeTrace(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(`{"type":"meta","v":1,"experiment":"cli-test","seed":7,"period_seconds":600,"periods":2,` +
		`"classes":[{"id":1,"name":"Class1","kind":"OLAP","goal":"velocity >= 0.40","target":0.4}]}` + "\n")
	for i, e := range []string{
		`"t":0,"kind":"submit","class":1,"query":1,"client":1`,
		`"t":1,"kind":"start","class":1,"query":1,"client":1`,
		`"t":5,"kind":"done","class":1,"query":1,"client":1`,
	} {
		fmt.Fprintf(&b, `{"type":"event","seq":%d,%s}`+"\n", i+1, e)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// An -explain period range past the schedule's last period is a usage
// mistake: qtrace must exit 2 with a clear error, not render an empty
// breakdown.
func TestPeriodPastEndExits2(t *testing.T) {
	tr := writeTrace(t) // 2 periods
	for _, spec := range []string{"class=A period=3-99", "class=A period=99", "class=A period=1-99"} {
		_, stderr, code := runCLI(t, "-explain", spec, tr)
		if code != 2 {
			t.Errorf("%q: exit %d, want 2 (stderr: %s)", spec, code, stderr)
		}
		if !strings.Contains(stderr, "out of range") && !strings.Contains(stderr, "beyond") {
			t.Errorf("%q: stderr lacks range error: %q", spec, stderr)
		}
	}
}

func TestInRangeExplainSucceeds(t *testing.T) {
	tr := writeTrace(t)
	stdout, stderr, code := runCLI(t, "-explain", "class=A period=1", tr)
	if code != 0 {
		t.Fatalf("exit %d (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "Class1") {
		t.Fatalf("explain output missing class:\n%s", stdout)
	}
}

func TestSummaryExits0(t *testing.T) {
	tr := writeTrace(t)
	stdout, _, code := runCLI(t, tr)
	if code != 0 || !strings.Contains(stdout, "cli-test") {
		t.Fatalf("summary exit %d:\n%s", code, stdout)
	}
}
