// Command qreport turns decision audit logs exported by qsim/qsweep
// -decisions into operator reports.
//
// Usage:
//
//	qreport decisions.jsonl                          # run summary + SLO attainment
//	qreport -timeline decisions.jsonl                # per-tick plan timeline
//	qreport -why "class=B tick=3-5" decisions.jsonl  # why lines for one class
//	qreport -attr -trace t.jsonl decisions.jsonl     # violation attribution
//	qreport -metrics m.txt decisions.jsonl           # + metrics cross-check
//
// Classes may be named by numeric ID, letter (A = first class in the log
// header), or name; ticks are 1-based. -window N-M restricts -timeline
// and -why to a tick range. All analysis lives in internal/decisionlog
// and streams its inputs, so memory stays constant regardless of log or
// trace size.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/decisionlog"
)

func main() {
	timeline := flag.Bool("timeline", false, "print the per-tick plan timeline")
	why := flag.String("why", "", `explain one class's decisions, e.g. "class=B tick=3-5"`)
	attr := flag.Bool("attr", false, "attribute goal misses (requires -trace)")
	tracePath := flag.String("trace", "", "trace JSONL export for -attr")
	metricsPath := flag.String("metrics", "", "metrics exposition to cross-check against")
	window := flag.String("window", "", `tick window for -timeline/-why, e.g. "3-5"`)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qreport [flags] decisions.jsonl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *attr && *tracePath == "" {
		fmt.Fprintln(os.Stderr, "qreport: -attr requires -trace trace.jsonl")
		os.Exit(2)
	}
	win, err := decisionlog.ParseTickRange(*window)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qreport:", err)
		os.Exit(2)
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	switch {
	case *why != "":
		err = withLog(flag.Arg(0), func(r io.Reader) error {
			return decisionlog.Why(out, r, *why, win)
		})
	case *timeline:
		err = withLog(flag.Arg(0), func(r io.Reader) error {
			return decisionlog.Timeline(out, r, win)
		})
	case *attr:
		err = runAttr(out, flag.Arg(0), *tracePath)
	default:
		err = withLog(flag.Arg(0), func(r io.Reader) error {
			return decisionlog.Summarize(out, r)
		})
	}
	// Spec mistakes (bad class, tick window past the end of the log) are
	// usage errors, not log problems: exit 2, like qtrace.
	var spec *decisionlog.SpecError
	if errors.As(err, &spec) {
		out.Flush()
		fmt.Fprintln(os.Stderr, "qreport:", err)
		os.Exit(2)
	}
	if err == nil && *metricsPath != "" {
		fmt.Fprintln(out)
		err = withFile(*metricsPath, func(r io.Reader) error {
			return decisionlog.MetricsCrossCheck(out, r)
		})
	}
	if err != nil {
		out.Flush()
		fmt.Fprintln(os.Stderr, "qreport:", err)
		os.Exit(1)
	}
}

// withLog opens the decision log with a large read buffer and runs fn.
func withLog(path string, fn func(io.Reader) error) error {
	return withFile(path, fn)
}

func withFile(path string, fn func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(bufio.NewReaderSize(f, 1<<20))
}

// runAttr joins the decision log with the trace export.
func runAttr(out io.Writer, decisionsPath, tracePath string) error {
	var rows []decisionlog.Attribution
	var meta decisionlog.Meta
	err := withLog(decisionsPath, func(dr io.Reader) error {
		return withFile(tracePath, func(tr io.Reader) error {
			var err error
			rows, meta, err = decisionlog.Attribute(dr, tr)
			return err
		})
	})
	if err != nil {
		return err
	}
	decisionlog.RenderAttribution(out, meta, rows)
	return nil
}
