package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/decisionlog"
	"repro/internal/engine"
	"repro/internal/simclock"
	"repro/internal/solver"
)

// TestMain lets the test binary impersonate the CLI: with QREPORT_MAIN=1
// the process runs main() on its own arguments, so tests can assert the
// real exit codes the shell would see.
func TestMain(m *testing.M) {
	if os.Getenv("QREPORT_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// runCLI re-executes this test binary as qreport.
func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "QREPORT_MAIN=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return out.String(), errb.String(), code
}

// writeDecisions builds a tiny two-tick decision log on disk.
func writeDecisions(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "decisions.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dw, err := decisionlog.NewWriter(f, decisionlog.Meta{
		Experiment: "cli-test", Seed: 1, ControlInterval: 60, SLOWindow: 10, SLOBudget: 0.1,
		Classes: []decisionlog.ClassMeta{
			{ID: 1, Name: "Class1", Kind: "OLAP", Metric: "velocity", Target: 0.4, Importance: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tick := range []float64{60, 120} {
		dw.Note(core.PlanRecord{
			Time: simclock.Time(tick),
			Measurement: core.Measurement{
				Velocity:        map[engine.ClassID]float64{1: 0.5},
				VelocitySamples: map[engine.ClassID]int{1: 5},
			},
			Limits: solver.Plan{1: 20000},
		})
	}
	dw.Flush()
	if dw.Err() != nil {
		t.Fatal(dw.Err())
	}
	return path
}

// A -window (or -why tick=) range past the log's last tick is a usage
// mistake: qreport must exit 2 with a clear error, not print a silently
// empty timeline.
func TestWindowPastLastTickExits2(t *testing.T) {
	log := writeDecisions(t) // 2 ticks
	for _, args := range [][]string{
		{"-timeline", "-window", "3-99", log},
		{"-timeline", "-window", "99", log},
		{"-why", "class=A tick=3-99", log},
	} {
		_, stderr, code := runCLI(t, args...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr: %s)", args, code, stderr)
		}
		if !strings.Contains(stderr, "out of range") && !strings.Contains(stderr, "past last tick") {
			t.Errorf("%v: stderr lacks range error: %q", args, stderr)
		}
	}
}

func TestInRangeWindowSucceeds(t *testing.T) {
	log := writeDecisions(t)
	stdout, stderr, code := runCLI(t, "-timeline", "-window", "1-2", log)
	if code != 0 {
		t.Fatalf("exit %d (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "tick    1") || !strings.Contains(stdout, "tick    2") {
		t.Fatalf("timeline missing ticks:\n%s", stdout)
	}
}

func TestMissingLogExits1(t *testing.T) {
	_, _, code := runCLI(t, filepath.Join(t.TempDir(), "nope.jsonl"))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}
