#!/bin/sh
# Benchmark trajectory: run the suite in bench_test.go with -benchmem and
# record the results as BENCH_qsim.json (parsed by cmd/benchjson; format
# documented in README "Benchmark trajectory"). Each experiment benchmark
# is one full simulated run, so the default whole-suite pass takes a few
# minutes; narrow it with e.g.
#
#	BENCH=BenchmarkClock ./scripts/bench.sh     # just the clock kernel
#	BENCHTIME=3x ./scripts/bench.sh             # 3 iterations per bench
#	OUT=/tmp/b.json ./scripts/bench.sh          # write elsewhere
#
# The timestamp and toolchain version are captured here and passed to
# benchjson as flags: the Go tools in this repository are forbidden from
# reading the wall clock (qlint's wallclock invariant), and the shell is
# where that boundary sits.
set -eu

cd "$(dirname "$0")/.."

BENCH=${BENCH:-.}
BENCHTIME=${BENCHTIME:-1x}
TIMEOUT=${TIMEOUT:-30m}
OUT=${OUT:-BENCH_qsim.json}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# No pipe into tee here: POSIX sh has no pipefail, and a truncated
# benchmark log must fail the script, not get recorded as a trajectory
# point. The whole-suite pass is ~15 minutes of full simulated runs,
# hence the explicit -timeout.
if ! go test -run='^$' -bench="$BENCH" -benchtime="$BENCHTIME" \
	-benchmem -timeout "$TIMEOUT" ./... >"$tmp" 2>&1; then
	cat "$tmp"
	echo "bench.sh: benchmark run failed" >&2
	exit 1
fi
cat "$tmp"
go run ./cmd/benchjson \
	-date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-go "$(go version)" \
	-o "$OUT" <"$tmp"
echo "wrote $OUT"
