#!/usr/bin/env bash
# Allocation-budget smoke: run the headline mixed benchmarks once with
# -benchmem and fail if bytes allocated per op regress more than 10%
# over the checked-in budget (scripts/alloc_budget.txt). The budget
# encodes the hot path's allocation discipline — pooled query/span
# objects, dense per-class slices, batched trace dispatch — as a CI
# regression target rather than a one-off win.
#
# Usage:
#   scripts/alloc_budget.sh            # compare against the budget
#   scripts/alloc_budget.sh -update    # rewrite the budget from this run
set -euo pipefail
cd "$(dirname "$0")/.."

BUDGET=scripts/alloc_budget.txt
BENCH='^(BenchmarkSystemCostLimit|BenchmarkFig2)$'

OUT=$(go test -run='^$' -bench="$BENCH" -benchtime=1x -benchmem -timeout 1800s .)
echo "$OUT"

# "BenchmarkFig2-8  1  ... 123456 B/op ..." -> "Fig2 123456"
MEASURED=$(echo "$OUT" | awk '/^Benchmark/ {
    name=$1; sub(/^Benchmark/, "", name); sub(/-[0-9]+$/, "", name)
    for (i = 3; i <= NF; i++) if ($(i) == "B/op") print name, $(i-1)
}')
if [[ -z "$MEASURED" ]]; then
    echo "alloc-budget: no B/op measurements parsed" >&2
    exit 1
fi

if [[ "${1:-}" == "-update" ]]; then
    echo "$MEASURED" > "$BUDGET"
    echo "alloc-budget: updated $BUDGET"
    exit 0
fi

fail=0
while read -r name bytes; do
    budget=$(awk -v n="$name" '$1 == n { print $2 }' "$BUDGET")
    if [[ -z "$budget" ]]; then
        echo "alloc-budget: $name missing from $BUDGET (run scripts/alloc_budget.sh -update)" >&2
        fail=1
        continue
    fi
    limit=$((budget + budget / 10))
    if ((bytes > limit)); then
        echo "alloc-budget: FAIL $name: $bytes B/op exceeds budget $budget (+10% = $limit)" >&2
        fail=1
    else
        echo "alloc-budget: ok   $name: $bytes B/op within budget $budget (+10% = $limit)"
    fi
done <<< "$MEASURED"
exit $fail
