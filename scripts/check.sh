#!/bin/sh
# Repository check gate: formatting, build, vet, qlint, full tests, then
# the race detector over the whole tree.
#
# - gofmt -l fails the gate on any unformatted file.
# - qlint (cmd/qlint) statically enforces the simulation invariants —
#   no wall-clock time, no math/rand, no out-of-pool goroutines, no
#   order-sensitive map iteration, no exact float equality, no freelist
#   protocol violations, no un-checkpointed mutable state, no
#   allocations on //qlint:hotpath-annotated chains — so a new time.Now,
#   stray go statement, or leaked pooled pointer in simulation code
#   fails the gate before anything runs.
# - The race pass guards the parallel experiment layer's isolation
#   invariant (internal/experiment/parallel.go): every sweep fans seeded
#   runs across goroutines, so any shared mutable state between runs
#   surfaces here. Pass RACEFLAGS= (empty) to run the complete suite
#   under race instead of the -short subset.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "$unformatted"
	echo "check.sh: unformatted files (run gofmt -w .)"
	exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== qlint ./..."
go run ./cmd/qlint ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ${RACEFLAGS--short} ./..."
go test -race ${RACEFLAGS--short} -timeout 30m ./...

echo "check.sh: all green"
