#!/bin/sh
# Repository check gate: build, vet, full tests, then the race detector
# over the whole tree. The race pass is what guards the parallel
# experiment layer's isolation invariant (internal/experiment/parallel.go):
# every sweep fans seeded runs across goroutines, so any shared mutable
# state between runs surfaces here. Pass RACEFLAGS= (empty) to run the
# complete suite under race instead of the -short subset.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ${RACEFLAGS--short} ./..."
go test -race ${RACEFLAGS--short} -timeout 30m ./...

echo "check.sh: all green"
